package la

import (
	"fmt"
	"math"

	"github.com/rgml/rgml/internal/obs"
	"github.com/rgml/rgml/internal/par"
)

// DenseMatrix is a column-major dense matrix, the counterpart of
// x10.matrix.DenseMatrix (GML stores dense data in column-major order to
// match BLAS). Element (i, j) lives at Data[i + j*Rows].
type DenseMatrix struct {
	Rows, Cols int
	Data       []float64
}

// NewDense returns a zeroed rows×cols dense matrix.
func NewDense(rows, cols int) *DenseMatrix {
	checkDim(rows >= 0 && cols >= 0, "NewDense(%d, %d): negative dimension", rows, cols)
	return &DenseMatrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// NewDenseFrom wraps data (column-major) as a rows×cols matrix without
// copying. len(data) must be rows*cols.
func NewDenseFrom(rows, cols int, data []float64) *DenseMatrix {
	checkDim(len(data) == rows*cols, "NewDenseFrom(%d, %d): data length %d", rows, cols, len(data))
	return &DenseMatrix{Rows: rows, Cols: cols, Data: data}
}

// At returns element (i, j).
func (m *DenseMatrix) At(i, j int) float64 {
	checkDim(i >= 0 && i < m.Rows && j >= 0 && j < m.Cols, "At(%d, %d) out of %dx%d", i, j, m.Rows, m.Cols)
	return m.Data[i+j*m.Rows]
}

// Set assigns element (i, j).
func (m *DenseMatrix) Set(i, j int, v float64) {
	checkDim(i >= 0 && i < m.Rows && j >= 0 && j < m.Cols, "Set(%d, %d) out of %dx%d", i, j, m.Rows, m.Cols)
	m.Data[i+j*m.Rows] = v
}

// Clone returns an independent copy.
func (m *DenseMatrix) Clone() *DenseMatrix {
	out := NewDense(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Zero clears all elements.
func (m *DenseMatrix) Zero() {
	par.For(len(m.Data), vecGrain, func(lo, hi int) {
		seg := m.Data[lo:hi]
		for i := range seg {
			seg[i] = 0
		}
	})
}

// Scale multiplies every element by a.
func (m *DenseMatrix) Scale(a float64) *DenseMatrix {
	par.For(len(m.Data), vecGrain, func(lo, hi int) {
		seg := m.Data[lo:hi]
		for i := range seg {
			seg[i] *= a
		}
	})
	return m
}

// CellAdd accumulates b into m element-wise.
func (m *DenseMatrix) CellAdd(b *DenseMatrix) *DenseMatrix {
	checkDim(m.Rows == b.Rows && m.Cols == b.Cols, "CellAdd: %dx%d += %dx%d", m.Rows, m.Cols, b.Rows, b.Cols)
	par.For(len(m.Data), vecGrain, func(lo, hi int) {
		dst, src := m.Data[lo:hi], b.Data[lo:hi]
		for i := range dst {
			dst[i] += src[i]
		}
	})
	return m
}

// MultVec computes y = m · x (GEMV). y must have length m.Rows and is
// overwritten; x must have length m.Cols.
//
// The kernel is parallel over output-row chunks and register-blocked four
// columns wide: each pass streams four columns of m against one resident
// chunk of y, which both quarters the y traffic and keeps four
// independent load streams in flight. Each y element still accumulates
// its terms in ascending column order, grouped in fours — a fixed
// structure, so results are bit-identical at every worker count.
func (m *DenseMatrix) MultVec(x, y Vector) {
	checkDim(len(x) == m.Cols, "MultVec: x len %d != cols %d", len(x), m.Cols)
	checkDim(len(y) == m.Rows, "MultVec: y len %d != rows %d", len(y), m.Rows)
	t0 := kstart()
	rows, cols := m.Rows, m.Cols
	par.For(rows, gemvRowGrain, func(lo, hi int) {
		yc := y[lo:hi]
		for i := range yc {
			yc[i] = 0
		}
		j := 0
		for ; j+4 <= cols; j += 4 {
			c0 := m.Data[j*rows+lo : j*rows+hi]
			c1 := m.Data[(j+1)*rows+lo : (j+1)*rows+hi]
			c2 := m.Data[(j+2)*rows+lo : (j+2)*rows+hi]
			c3 := m.Data[(j+3)*rows+lo : (j+3)*rows+hi]
			x0, x1, x2, x3 := x[j], x[j+1], x[j+2], x[j+3]
			c1, c2, c3 = c1[:len(c0)], c2[:len(c0)], c3[:len(c0)]
			yc := yc[:len(c0)]
			for i := range c0 {
				yc[i] = yc[i] + c0[i]*x0 + c1[i]*x1 + c2[i]*x2 + c3[i]*x3
			}
		}
		for ; j < cols; j++ {
			xj := x[j]
			col := m.Data[j*rows+lo : j*rows+hi]
			for i, v := range col {
				yc[i] += v * xj
			}
		}
	})
	kdone(func(k *kinstr) *obs.Histogram { return k.gemv }, t0)
}

// TransMultVec computes y = mᵀ · x. y must have length m.Cols and is
// overwritten; x must have length m.Rows. Parallel over output columns;
// each column is an independent 4-accumulator dot product (dot4), whose
// fold order is fixed by the row count alone.
func (m *DenseMatrix) TransMultVec(x, y Vector) {
	checkDim(len(x) == m.Rows, "TransMultVec: x len %d != rows %d", len(x), m.Rows)
	checkDim(len(y) == m.Cols, "TransMultVec: y len %d != cols %d", len(y), m.Cols)
	t0 := kstart()
	rows := m.Rows
	par.For(m.Cols, tmvColGrain, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			y[j] = dot4(m.Data[j*rows:(j+1)*rows], x)
		}
	})
	kdone(func(k *kinstr) *obs.Histogram { return k.tgemv }, t0)
}

// Mult computes c = m · b (GEMM). c must be m.Rows × b.Cols and is
// overwritten.
//
// The kernel is parallel over output-column chunks and tiled two ways
// inside a chunk: 4×4 register blocking (four C columns accumulate from
// four A columns per pass, sixteen b scalars in registers) and
// gemmRowTile-row cache strips, so a C strip stays in L1 across the whole
// k loop and the matching A strip is reused from L2 across the chunk's
// column groups. Every C element accumulates over k in ascending order
// grouped in fours — fixed by the operand shapes, so any worker count
// produces identical bits.
func (m *DenseMatrix) Mult(b, c *DenseMatrix) {
	checkDim(m.Cols == b.Rows, "Mult: inner dims %d != %d", m.Cols, b.Rows)
	checkDim(c.Rows == m.Rows && c.Cols == b.Cols, "Mult: result %dx%d, want %dx%d", c.Rows, c.Cols, m.Rows, b.Cols)
	t0 := kstart()
	rows, inner, brows := m.Rows, m.Cols, b.Rows
	par.For(b.Cols, gemmColGrain, func(jlo, jhi int) {
		tiles := int64(0)
		for j := jlo; j < jhi; j++ {
			col := c.Data[j*rows : (j+1)*rows]
			for i := range col {
				col[i] = 0
			}
		}
		for i0 := 0; i0 < rows; i0 += gemmRowTile {
			i1 := i0 + gemmRowTile
			if i1 > rows {
				i1 = rows
			}
			j := jlo
			for ; j+4 <= jhi; j += 4 {
				tiles++
				c0 := c.Data[j*rows+i0 : j*rows+i1]
				c1 := c.Data[(j+1)*rows+i0 : (j+1)*rows+i1]
				c2 := c.Data[(j+2)*rows+i0 : (j+2)*rows+i1]
				c3 := c.Data[(j+3)*rows+i0 : (j+3)*rows+i1]
				c1, c2, c3 = c1[:len(c0)], c2[:len(c0)], c3[:len(c0)]
				k := 0
				for ; k+4 <= inner; k += 4 {
					a0 := m.Data[k*rows+i0 : k*rows+i1]
					a1 := m.Data[(k+1)*rows+i0 : (k+1)*rows+i1]
					a2 := m.Data[(k+2)*rows+i0 : (k+2)*rows+i1]
					a3 := m.Data[(k+3)*rows+i0 : (k+3)*rows+i1]
					a1, a2, a3 = a1[:len(a0)], a2[:len(a0)], a3[:len(a0)]
					b00, b10, b20, b30 := b.Data[k+j*brows], b.Data[k+1+j*brows], b.Data[k+2+j*brows], b.Data[k+3+j*brows]
					b01, b11, b21, b31 := b.Data[k+(j+1)*brows], b.Data[k+1+(j+1)*brows], b.Data[k+2+(j+1)*brows], b.Data[k+3+(j+1)*brows]
					b02, b12, b22, b32 := b.Data[k+(j+2)*brows], b.Data[k+1+(j+2)*brows], b.Data[k+2+(j+2)*brows], b.Data[k+3+(j+2)*brows]
					b03, b13, b23, b33 := b.Data[k+(j+3)*brows], b.Data[k+1+(j+3)*brows], b.Data[k+2+(j+3)*brows], b.Data[k+3+(j+3)*brows]
					for i := range a0 {
						v0, v1, v2, v3 := a0[i], a1[i], a2[i], a3[i]
						c0[i] = c0[i] + v0*b00 + v1*b10 + v2*b20 + v3*b30
						c1[i] = c1[i] + v0*b01 + v1*b11 + v2*b21 + v3*b31
						c2[i] = c2[i] + v0*b02 + v1*b12 + v2*b22 + v3*b32
						c3[i] = c3[i] + v0*b03 + v1*b13 + v2*b23 + v3*b33
					}
				}
				for ; k < inner; k++ {
					aCol := m.Data[k*rows+i0 : k*rows+i1]
					bk0, bk1, bk2, bk3 := b.Data[k+j*brows], b.Data[k+(j+1)*brows], b.Data[k+(j+2)*brows], b.Data[k+(j+3)*brows]
					for i, v := range aCol {
						c0[i] += v * bk0
						c1[i] += v * bk1
						c2[i] += v * bk2
						c3[i] += v * bk3
					}
				}
			}
			for ; j < jhi; j++ {
				tiles++
				cCol := c.Data[j*rows+i0 : j*rows+i1]
				k := 0
				for ; k+4 <= inner; k += 4 {
					a0 := m.Data[k*rows+i0 : k*rows+i1]
					a1 := m.Data[(k+1)*rows+i0 : (k+1)*rows+i1]
					a2 := m.Data[(k+2)*rows+i0 : (k+2)*rows+i1]
					a3 := m.Data[(k+3)*rows+i0 : (k+3)*rows+i1]
					a1, a2, a3 = a1[:len(a0)], a2[:len(a0)], a3[:len(a0)]
					bk0, bk1, bk2, bk3 := b.Data[k+j*brows], b.Data[k+1+j*brows], b.Data[k+2+j*brows], b.Data[k+3+j*brows]
					for i := range a0 {
						cCol[i] = cCol[i] + a0[i]*bk0 + a1[i]*bk1 + a2[i]*bk2 + a3[i]*bk3
					}
				}
				for ; k < inner; k++ {
					aCol := m.Data[k*rows+i0 : k*rows+i1]
					bkj := b.Data[k+j*brows]
					for i, v := range aCol {
						cCol[i] += v * bkj
					}
				}
			}
		}
		addTiles(tiles)
	})
	kdone(func(k *kinstr) *obs.Histogram { return k.gemm }, t0)
}

// ExtractSub copies the rows×cols submatrix anchored at (r0, c0) into a new
// matrix. It is the building block of the re-grid restore path (copying the
// overlap of an old block into a new block).
func (m *DenseMatrix) ExtractSub(r0, c0, rows, cols int) *DenseMatrix {
	checkDim(r0 >= 0 && c0 >= 0 && r0+rows <= m.Rows && c0+cols <= m.Cols,
		"ExtractSub(%d, %d, %d, %d) out of %dx%d", r0, c0, rows, cols, m.Rows, m.Cols)
	out := NewDense(rows, cols)
	for j := 0; j < cols; j++ {
		src := m.Data[r0+(c0+j)*m.Rows:]
		copy(out.Data[j*rows:(j+1)*rows], src[:rows])
	}
	return out
}

// PasteSub copies sub into m with its top-left corner at (r0, c0).
func (m *DenseMatrix) PasteSub(r0, c0 int, sub *DenseMatrix) {
	checkDim(r0 >= 0 && c0 >= 0 && r0+sub.Rows <= m.Rows && c0+sub.Cols <= m.Cols,
		"PasteSub(%d, %d) of %dx%d into %dx%d", r0, c0, sub.Rows, sub.Cols, m.Rows, m.Cols)
	for j := 0; j < sub.Cols; j++ {
		dst := m.Data[r0+(c0+j)*m.Rows:]
		copy(dst[:sub.Rows], sub.Data[j*sub.Rows:(j+1)*sub.Rows])
	}
}

// FrobNorm returns the Frobenius norm of m (deterministic chunked
// reduction, see SumSquares).
func (m *DenseMatrix) FrobNorm() float64 {
	return math.Sqrt(SumSquares(m.Data))
}

// EqualApprox reports whether m and b agree element-wise within tol.
func (m *DenseMatrix) EqualApprox(b *DenseMatrix, tol float64) bool {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		return false
	}
	for i := range m.Data {
		if math.Abs(m.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

// Bytes returns the serialized payload size, for network-cost accounting.
func (m *DenseMatrix) Bytes() int { return 8 * len(m.Data) }

// String implements fmt.Stringer with a compact shape description.
func (m *DenseMatrix) String() string {
	return fmt.Sprintf("DenseMatrix(%dx%d)", m.Rows, m.Cols)
}

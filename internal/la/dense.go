package la

import (
	"fmt"
	"math"
)

// DenseMatrix is a column-major dense matrix, the counterpart of
// x10.matrix.DenseMatrix (GML stores dense data in column-major order to
// match BLAS). Element (i, j) lives at Data[i + j*Rows].
type DenseMatrix struct {
	Rows, Cols int
	Data       []float64
}

// NewDense returns a zeroed rows×cols dense matrix.
func NewDense(rows, cols int) *DenseMatrix {
	checkDim(rows >= 0 && cols >= 0, "NewDense(%d, %d): negative dimension", rows, cols)
	return &DenseMatrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// NewDenseFrom wraps data (column-major) as a rows×cols matrix without
// copying. len(data) must be rows*cols.
func NewDenseFrom(rows, cols int, data []float64) *DenseMatrix {
	checkDim(len(data) == rows*cols, "NewDenseFrom(%d, %d): data length %d", rows, cols, len(data))
	return &DenseMatrix{Rows: rows, Cols: cols, Data: data}
}

// At returns element (i, j).
func (m *DenseMatrix) At(i, j int) float64 {
	checkDim(i >= 0 && i < m.Rows && j >= 0 && j < m.Cols, "At(%d, %d) out of %dx%d", i, j, m.Rows, m.Cols)
	return m.Data[i+j*m.Rows]
}

// Set assigns element (i, j).
func (m *DenseMatrix) Set(i, j int, v float64) {
	checkDim(i >= 0 && i < m.Rows && j >= 0 && j < m.Cols, "Set(%d, %d) out of %dx%d", i, j, m.Rows, m.Cols)
	m.Data[i+j*m.Rows] = v
}

// Clone returns an independent copy.
func (m *DenseMatrix) Clone() *DenseMatrix {
	out := NewDense(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Zero clears all elements.
func (m *DenseMatrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Scale multiplies every element by a.
func (m *DenseMatrix) Scale(a float64) *DenseMatrix {
	for i := range m.Data {
		m.Data[i] *= a
	}
	return m
}

// CellAdd accumulates b into m element-wise.
func (m *DenseMatrix) CellAdd(b *DenseMatrix) *DenseMatrix {
	checkDim(m.Rows == b.Rows && m.Cols == b.Cols, "CellAdd: %dx%d += %dx%d", m.Rows, m.Cols, b.Rows, b.Cols)
	for i := range m.Data {
		m.Data[i] += b.Data[i]
	}
	return m
}

// MultVec computes y = m · x (GEMV). y must have length m.Rows and is
// overwritten; x must have length m.Cols.
func (m *DenseMatrix) MultVec(x, y Vector) {
	checkDim(len(x) == m.Cols, "MultVec: x len %d != cols %d", len(x), m.Cols)
	checkDim(len(y) == m.Rows, "MultVec: y len %d != rows %d", len(y), m.Rows)
	y.Zero()
	// Column-major traversal: accumulate x[j] * column j.
	for j := 0; j < m.Cols; j++ {
		xj := x[j]
		if xj == 0 {
			continue
		}
		col := m.Data[j*m.Rows : (j+1)*m.Rows]
		for i, v := range col {
			y[i] += v * xj
		}
	}
}

// TransMultVec computes y = mᵀ · x. y must have length m.Cols and is
// overwritten; x must have length m.Rows.
func (m *DenseMatrix) TransMultVec(x, y Vector) {
	checkDim(len(x) == m.Rows, "TransMultVec: x len %d != rows %d", len(x), m.Rows)
	checkDim(len(y) == m.Cols, "TransMultVec: y len %d != cols %d", len(y), m.Cols)
	for j := 0; j < m.Cols; j++ {
		col := m.Data[j*m.Rows : (j+1)*m.Rows]
		var s float64
		for i, v := range col {
			s += v * x[i]
		}
		y[j] = s
	}
}

// Mult computes c = m · b (GEMM). c must be m.Rows × b.Cols and is
// overwritten.
func (m *DenseMatrix) Mult(b, c *DenseMatrix) {
	checkDim(m.Cols == b.Rows, "Mult: inner dims %d != %d", m.Cols, b.Rows)
	checkDim(c.Rows == m.Rows && c.Cols == b.Cols, "Mult: result %dx%d, want %dx%d", c.Rows, c.Cols, m.Rows, b.Cols)
	c.Zero()
	// jik order with column-major storage keeps the inner loop contiguous.
	for j := 0; j < b.Cols; j++ {
		cCol := c.Data[j*c.Rows : (j+1)*c.Rows]
		for k := 0; k < m.Cols; k++ {
			bkj := b.Data[k+j*b.Rows]
			if bkj == 0 {
				continue
			}
			aCol := m.Data[k*m.Rows : (k+1)*m.Rows]
			for i, v := range aCol {
				cCol[i] += v * bkj
			}
		}
	}
}

// ExtractSub copies the rows×cols submatrix anchored at (r0, c0) into a new
// matrix. It is the building block of the re-grid restore path (copying the
// overlap of an old block into a new block).
func (m *DenseMatrix) ExtractSub(r0, c0, rows, cols int) *DenseMatrix {
	checkDim(r0 >= 0 && c0 >= 0 && r0+rows <= m.Rows && c0+cols <= m.Cols,
		"ExtractSub(%d, %d, %d, %d) out of %dx%d", r0, c0, rows, cols, m.Rows, m.Cols)
	out := NewDense(rows, cols)
	for j := 0; j < cols; j++ {
		src := m.Data[r0+(c0+j)*m.Rows:]
		copy(out.Data[j*rows:(j+1)*rows], src[:rows])
	}
	return out
}

// PasteSub copies sub into m with its top-left corner at (r0, c0).
func (m *DenseMatrix) PasteSub(r0, c0 int, sub *DenseMatrix) {
	checkDim(r0 >= 0 && c0 >= 0 && r0+sub.Rows <= m.Rows && c0+sub.Cols <= m.Cols,
		"PasteSub(%d, %d) of %dx%d into %dx%d", r0, c0, sub.Rows, sub.Cols, m.Rows, m.Cols)
	for j := 0; j < sub.Cols; j++ {
		dst := m.Data[r0+(c0+j)*m.Rows:]
		copy(dst[:sub.Rows], sub.Data[j*sub.Rows:(j+1)*sub.Rows])
	}
}

// FrobNorm returns the Frobenius norm of m.
func (m *DenseMatrix) FrobNorm() float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// EqualApprox reports whether m and b agree element-wise within tol.
func (m *DenseMatrix) EqualApprox(b *DenseMatrix, tol float64) bool {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		return false
	}
	for i := range m.Data {
		if math.Abs(m.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

// Bytes returns the serialized payload size, for network-cost accounting.
func (m *DenseMatrix) Bytes() int { return 8 * len(m.Data) }

// String implements fmt.Stringer with a compact shape description.
func (m *DenseMatrix) String() string {
	return fmt.Sprintf("DenseMatrix(%dx%d)", m.Rows, m.Cols)
}

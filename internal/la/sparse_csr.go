package la

import (
	"fmt"
	"sort"
)

// SparseCSR is a compressed-sparse-row matrix, the counterpart of
// x10.matrix.sparse.SparseCSR. Row i's nonzeros occupy
// ColIdx[RowPtr[i]:RowPtr[i+1]] / Vals[RowPtr[i]:RowPtr[i+1]], with column
// indices sorted ascending within each row.
type SparseCSR struct {
	Rows, Cols int
	RowPtr     []int
	ColIdx     []int
	Vals       []float64
}

// NewSparseCSR returns an empty rows×cols CSR matrix.
func NewSparseCSR(rows, cols int) *SparseCSR {
	checkDim(rows >= 0 && cols >= 0, "NewSparseCSR(%d, %d)", rows, cols)
	return &SparseCSR{Rows: rows, Cols: cols, RowPtr: make([]int, rows+1)}
}

// NewSparseCSRFromTriplets assembles a CSR matrix from coordinate entries.
// Duplicate (row, col) entries are summed.
func NewSparseCSRFromTriplets(rows, cols int, ts []Triplet) *SparseCSR {
	// Reuse the CSC assembly with transposed coordinates, then transpose
	// back: keeps one well-tested code path.
	flipped := make([]Triplet, len(ts))
	for i, t := range ts {
		flipped[i] = Triplet{Row: t.Col, Col: t.Row, Val: t.Val}
	}
	csc := NewSparseCSCFromTriplets(cols, rows, flipped)
	return &SparseCSR{
		Rows: rows, Cols: cols,
		RowPtr: csc.ColPtr,
		ColIdx: csc.RowIdx,
		Vals:   csc.Vals,
	}
}

// NNZ returns the number of stored nonzeros.
func (m *SparseCSR) NNZ() int { return len(m.Vals) }

// At returns element (i, j) (zero when not stored).
func (m *SparseCSR) At(i, j int) float64 {
	checkDim(i >= 0 && i < m.Rows && j >= 0 && j < m.Cols, "At(%d, %d) out of %dx%d", i, j, m.Rows, m.Cols)
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	k := lo + sort.SearchInts(m.ColIdx[lo:hi], j)
	if k < hi && m.ColIdx[k] == j {
		return m.Vals[k]
	}
	return 0
}

// Clone returns an independent copy.
func (m *SparseCSR) Clone() *SparseCSR {
	return &SparseCSR{
		Rows: m.Rows, Cols: m.Cols,
		RowPtr: append([]int(nil), m.RowPtr...),
		ColIdx: append([]int(nil), m.ColIdx...),
		Vals:   append([]float64(nil), m.Vals...),
	}
}

// MultVec computes y = m · x. y has length m.Rows and is overwritten.
func (m *SparseCSR) MultVec(x, y Vector) {
	checkDim(len(x) == m.Cols, "MultVec: x len %d != cols %d", len(x), m.Cols)
	checkDim(len(y) == m.Rows, "MultVec: y len %d != rows %d", len(y), m.Rows)
	for i := 0; i < m.Rows; i++ {
		var s float64
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			s += m.Vals[k] * x[m.ColIdx[k]]
		}
		y[i] = s
	}
}

// TransMultVec computes y = mᵀ · x. y has length m.Cols and is overwritten.
func (m *SparseCSR) TransMultVec(x, y Vector) {
	checkDim(len(x) == m.Rows, "TransMultVec: x len %d != rows %d", len(x), m.Rows)
	checkDim(len(y) == m.Cols, "TransMultVec: y len %d != cols %d", len(y), m.Cols)
	y.Zero()
	for i := 0; i < m.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			y[m.ColIdx[k]] += m.Vals[k] * xi
		}
	}
}

// Scale multiplies every stored value by a.
func (m *SparseCSR) Scale(a float64) *SparseCSR {
	for i := range m.Vals {
		m.Vals[i] *= a
	}
	return m
}

// ToDense expands m into a dense matrix.
func (m *SparseCSR) ToDense() *DenseMatrix {
	d := NewDense(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			d.Data[i+m.ColIdx[k]*m.Rows] = m.Vals[k]
		}
	}
	return d
}

// ToCSC converts m to compressed-sparse-column form.
func (m *SparseCSR) ToCSC() *SparseCSC {
	out := NewSparseCSC(m.Rows, m.Cols)
	counts := make([]int, m.Cols+1)
	for _, j := range m.ColIdx {
		counts[j+1]++
	}
	for j := 0; j < m.Cols; j++ {
		counts[j+1] += counts[j]
	}
	out.ColPtr = counts
	out.RowIdx = make([]int, m.NNZ())
	out.Vals = make([]float64, m.NNZ())
	next := append([]int(nil), out.ColPtr...)
	for i := 0; i < m.Rows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			j := m.ColIdx[k]
			out.RowIdx[next[j]] = i
			out.Vals[next[j]] = m.Vals[k]
			next[j]++
		}
	}
	return out
}

// Triplets returns the matrix's nonzeros in coordinate form (row-major
// order).
func (m *SparseCSR) Triplets() []Triplet {
	ts := make([]Triplet, 0, m.NNZ())
	for i := 0; i < m.Rows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			ts = append(ts, Triplet{Row: i, Col: m.ColIdx[k], Val: m.Vals[k]})
		}
	}
	return ts
}

// EqualApprox reports whether m and b represent the same matrix within tol.
func (m *SparseCSR) EqualApprox(b *SparseCSR, tol float64) bool {
	return m.ToCSC().EqualApprox(b.ToCSC(), tol)
}

// Bytes returns the serialized payload size, for network-cost accounting.
func (m *SparseCSR) Bytes() int { return 16*m.NNZ() + 8*len(m.RowPtr) }

// String implements fmt.Stringer.
func (m *SparseCSR) String() string {
	return fmt.Sprintf("SparseCSR(%dx%d, nnz=%d)", m.Rows, m.Cols, m.NNZ())
}

package la

import (
	"sort"

	"github.com/rgml/rgml/internal/obs"
	"github.com/rgml/rgml/internal/par"
)

// Mixed dense/sparse accumulation kernels used by the distributed
// matrix-matrix operations (the GNMF factorization needs AᵀB, AᵀA, S·Bᵀ
// products between the sparse data matrix and the dense factors). All
// three run on the deterministic kernel engine (internal/par): the
// parallel decomposition assigns every output element to exactly one
// chunk, and each element's accumulation order is fixed by the operand
// shapes, so results are bit-identical at any worker count.

// AccumTransDenseSparse computes out += aᵀ·s, where a is rows×k dense and
// s is rows×m sparse; out is k×m and must be pre-allocated. Parallel over
// sparse columns: column j owns out[:, j], and the per-element order is
// exactly the naive loop's.
func AccumTransDenseSparse(a *DenseMatrix, s *SparseCSC, out *DenseMatrix) {
	checkDim(a.Rows == s.Rows, "AccumTransDenseSparse: a rows %d != s rows %d", a.Rows, s.Rows)
	checkDim(out.Rows == a.Cols && out.Cols == s.Cols,
		"AccumTransDenseSparse: out %dx%d, want %dx%d", out.Rows, out.Cols, a.Cols, s.Cols)
	t0 := kstart()
	k := a.Cols
	par.For(s.Cols, spColGrain, func(jlo, jhi int) {
		for j := jlo; j < jhi; j++ {
			outCol := out.Data[j*k : (j+1)*k]
			for p := s.ColPtr[j]; p < s.ColPtr[j+1]; p++ {
				i, v := s.RowIdx[p], s.Vals[p]
				// out[:, j] += v · a[i, :]ᵀ (a is column-major: stride a.Rows).
				for kk := 0; kk < k; kk++ {
					outCol[kk] += v * a.Data[i+kk*a.Rows]
				}
			}
		}
	})
	kdone(func(ki *kinstr) *obs.Histogram { return ki.tds }, t0)
}

// AccumSparseMultDenseT computes out += s·hᵀ, where s is rows×m sparse and
// h is k×m dense; out is rows×k and must be pre-allocated.
//
// The nonzeros of one sparse column scatter into arbitrary output rows,
// so the parallel decomposition is by output-row range: each chunk scans
// every column but binary-searches the (sorted) row indices for its own
// row sub-range. Every output element sees exactly the naive loop's
// accumulation order — ascending column, then ascending position — so
// the kernel is bit-identical to the serial reference (and to the
// pre-engine implementation).
func AccumSparseMultDenseT(s *SparseCSC, h *DenseMatrix, out *DenseMatrix) {
	checkDim(h.Cols == s.Cols, "AccumSparseMultDenseT: h cols %d != s cols %d", h.Cols, s.Cols)
	checkDim(out.Rows == s.Rows && out.Cols == h.Rows,
		"AccumSparseMultDenseT: out %dx%d, want %dx%d", out.Rows, out.Cols, s.Rows, h.Rows)
	t0 := kstart()
	k := h.Rows
	par.For(s.Rows, sdtRowGrain, func(lo, hi int) {
		full := lo == 0 && hi == s.Rows
		for j := 0; j < s.Cols; j++ {
			hCol := h.Data[j*k : (j+1)*k] // h[:, j], contiguous
			ps, pe := s.ColPtr[j], s.ColPtr[j+1]
			if !full {
				idx := s.RowIdx[ps:pe]
				pe = ps + sort.SearchInts(idx, hi)
				ps += sort.SearchInts(idx, lo)
			}
			for p := ps; p < pe; p++ {
				i, v := s.RowIdx[p], s.Vals[p]
				// out[i, :] += v · h[:, j]ᵀ (out is column-major: stride out.Rows).
				for kk := 0; kk < k; kk++ {
					out.Data[i+kk*out.Rows] += v * hCol[kk]
				}
			}
		}
	})
	kdone(func(ki *kinstr) *obs.Histogram { return ki.sdt }, t0)
}

// AccumTransDenseDense computes out += aᵀ·b for dense a (rows×k) and b
// (rows×m); out is k×m and must be pre-allocated. With b == a this is the
// Gram matrix AᵀA. Parallel over output columns; each entry is a dot4
// product whose fold order is fixed by the row count.
func AccumTransDenseDense(a, b *DenseMatrix, out *DenseMatrix) {
	checkDim(a.Rows == b.Rows, "AccumTransDenseDense: a rows %d != b rows %d", a.Rows, b.Rows)
	checkDim(out.Rows == a.Cols && out.Cols == b.Cols,
		"AccumTransDenseDense: out %dx%d, want %dx%d", out.Rows, out.Cols, a.Cols, b.Cols)
	t0 := kstart()
	par.For(b.Cols, gramColGrain, func(jlo, jhi int) {
		for j := jlo; j < jhi; j++ {
			bCol := b.Data[j*b.Rows : (j+1)*b.Rows]
			outCol := out.Data[j*out.Rows : (j+1)*out.Rows]
			for kk := 0; kk < a.Cols; kk++ {
				outCol[kk] += dot4(a.Data[kk*a.Rows:(kk+1)*a.Rows], bCol)
			}
		}
	})
	kdone(func(ki *kinstr) *obs.Histogram { return ki.gram }, t0)
}

package la

// Mixed dense/sparse accumulation kernels used by the distributed
// matrix-matrix operations (the GNMF factorization needs AᵀB, AᵀA, S·Bᵀ
// products between the sparse data matrix and the dense factors).

// AccumTransDenseSparse computes out += aᵀ·s, where a is rows×k dense and
// s is rows×m sparse; out is k×m and must be pre-allocated.
func AccumTransDenseSparse(a *DenseMatrix, s *SparseCSC, out *DenseMatrix) {
	checkDim(a.Rows == s.Rows, "AccumTransDenseSparse: a rows %d != s rows %d", a.Rows, s.Rows)
	checkDim(out.Rows == a.Cols && out.Cols == s.Cols,
		"AccumTransDenseSparse: out %dx%d, want %dx%d", out.Rows, out.Cols, a.Cols, s.Cols)
	k := a.Cols
	for j := 0; j < s.Cols; j++ {
		outCol := out.Data[j*k : (j+1)*k]
		for p := s.ColPtr[j]; p < s.ColPtr[j+1]; p++ {
			i, v := s.RowIdx[p], s.Vals[p]
			// out[:, j] += v · a[i, :]ᵀ (a is column-major: stride a.Rows).
			for kk := 0; kk < k; kk++ {
				outCol[kk] += v * a.Data[i+kk*a.Rows]
			}
		}
	}
}

// AccumSparseMultDenseT computes out += s·hᵀ, where s is rows×m sparse and
// h is k×m dense; out is rows×k and must be pre-allocated.
func AccumSparseMultDenseT(s *SparseCSC, h *DenseMatrix, out *DenseMatrix) {
	checkDim(h.Cols == s.Cols, "AccumSparseMultDenseT: h cols %d != s cols %d", h.Cols, s.Cols)
	checkDim(out.Rows == s.Rows && out.Cols == h.Rows,
		"AccumSparseMultDenseT: out %dx%d, want %dx%d", out.Rows, out.Cols, s.Rows, h.Rows)
	k := h.Rows
	for j := 0; j < s.Cols; j++ {
		hCol := h.Data[j*k : (j+1)*k] // h[:, j], contiguous
		for p := s.ColPtr[j]; p < s.ColPtr[j+1]; p++ {
			i, v := s.RowIdx[p], s.Vals[p]
			// out[i, :] += v · h[:, j]ᵀ (out is column-major: stride out.Rows).
			for kk := 0; kk < k; kk++ {
				out.Data[i+kk*out.Rows] += v * hCol[kk]
			}
		}
	}
}

// AccumTransDenseDense computes out += aᵀ·b for dense a (rows×k) and b
// (rows×m); out is k×m and must be pre-allocated. With b == a this is the
// Gram matrix AᵀA.
func AccumTransDenseDense(a, b *DenseMatrix, out *DenseMatrix) {
	checkDim(a.Rows == b.Rows, "AccumTransDenseDense: a rows %d != b rows %d", a.Rows, b.Rows)
	checkDim(out.Rows == a.Cols && out.Cols == b.Cols,
		"AccumTransDenseDense: out %dx%d, want %dx%d", out.Rows, out.Cols, a.Cols, b.Cols)
	for j := 0; j < b.Cols; j++ {
		bCol := b.Data[j*b.Rows : (j+1)*b.Rows]
		outCol := out.Data[j*out.Rows : (j+1)*out.Rows]
		for kk := 0; kk < a.Cols; kk++ {
			aCol := a.Data[kk*a.Rows : (kk+1)*a.Rows]
			var sum float64
			for i := range aCol {
				sum += aCol[i] * bCol[i]
			}
			outCol[kk] += sum
		}
	}
}

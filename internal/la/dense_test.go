package la

import (
	"math"
	"testing"
	"testing/quick"
)

// naiveMultVec is the reference GEMV used to validate the kernels.
func naiveMultVec(m *DenseMatrix, x Vector) Vector {
	y := NewVector(m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			y[i] += m.At(i, j) * x[j]
		}
	}
	return y
}

func TestDenseAtSetColumnMajor(t *testing.T) {
	m := NewDense(2, 3)
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 {
		t.Error("At/Set roundtrip failed")
	}
	// Column-major: element (1,2) is at index 1 + 2*2 = 5.
	if m.Data[5] != 5 {
		t.Errorf("storage not column-major: %v", m.Data)
	}
}

func TestDenseFromData(t *testing.T) {
	m := NewDenseFrom(2, 2, []float64{1, 2, 3, 4})
	if m.At(0, 0) != 1 || m.At(1, 0) != 2 || m.At(0, 1) != 3 || m.At(1, 1) != 4 {
		t.Errorf("NewDenseFrom layout wrong: %v", m.Data)
	}
}

func TestDenseMultVecAgainstNaive(t *testing.T) {
	rng := NewRNG(1)
	for _, dims := range [][2]int{{1, 1}, {3, 5}, {7, 2}, {16, 16}} {
		m := RandomDense(dims[0], dims[1], rng)
		x := RandomVector(dims[1], rng)
		y := NewVector(dims[0])
		m.MultVec(x, y)
		if !y.EqualApprox(naiveMultVec(m, x), 1e-12) {
			t.Errorf("MultVec mismatch for %dx%d", dims[0], dims[1])
		}
	}
}

func TestDenseTransMultVecAgainstNaive(t *testing.T) {
	rng := NewRNG(2)
	m := RandomDense(6, 4, rng)
	x := RandomVector(6, rng)
	y := NewVector(4)
	m.TransMultVec(x, y)
	want := NewVector(4)
	for j := 0; j < 4; j++ {
		for i := 0; i < 6; i++ {
			want[j] += m.At(i, j) * x[i]
		}
	}
	if !y.EqualApprox(want, 1e-12) {
		t.Errorf("TransMultVec = %v, want %v", y, want)
	}
}

func TestDenseMultAgainstNaive(t *testing.T) {
	rng := NewRNG(3)
	a := RandomDense(4, 3, rng)
	b := RandomDense(3, 5, rng)
	c := NewDense(4, 5)
	a.Mult(b, c)
	for i := 0; i < 4; i++ {
		for j := 0; j < 5; j++ {
			var want float64
			for k := 0; k < 3; k++ {
				want += a.At(i, k) * b.At(k, j)
			}
			if math.Abs(c.At(i, j)-want) > 1e-12 {
				t.Fatalf("Mult (%d,%d) = %v, want %v", i, j, c.At(i, j), want)
			}
		}
	}
}

func TestDenseScaleCellAdd(t *testing.T) {
	a := NewDenseFrom(2, 2, []float64{1, 2, 3, 4})
	b := NewDenseFrom(2, 2, []float64{10, 20, 30, 40})
	a.Scale(2).CellAdd(b)
	want := NewDenseFrom(2, 2, []float64{12, 24, 36, 48})
	if !a.EqualApprox(want, 0) {
		t.Errorf("Scale+CellAdd = %v", a.Data)
	}
}

func TestDenseExtractPasteRoundtrip(t *testing.T) {
	rng := NewRNG(4)
	m := RandomDense(8, 9, rng)
	sub := m.ExtractSub(2, 3, 4, 5)
	if sub.Rows != 4 || sub.Cols != 5 {
		t.Fatalf("sub dims %dx%d", sub.Rows, sub.Cols)
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 5; j++ {
			if sub.At(i, j) != m.At(i+2, j+3) {
				t.Fatalf("ExtractSub (%d,%d) wrong", i, j)
			}
		}
	}
	dst := NewDense(8, 9)
	dst.PasteSub(2, 3, sub)
	for i := 0; i < 8; i++ {
		for j := 0; j < 9; j++ {
			want := 0.0
			if i >= 2 && i < 6 && j >= 3 && j < 8 {
				want = m.At(i, j)
			}
			if dst.At(i, j) != want {
				t.Fatalf("PasteSub (%d,%d) = %v, want %v", i, j, dst.At(i, j), want)
			}
		}
	}
}

// Property: extracting any valid region then pasting it back into a zero
// matrix reproduces exactly that region.
func TestDenseExtractPasteProperty(t *testing.T) {
	rng := NewRNG(5)
	f := func(seed uint64, shape [4]uint8) bool {
		rows := int(shape[0]%10) + 1
		cols := int(shape[1]%10) + 1
		m := RandomDense(rows, cols, NewRNG(seed))
		r0 := int(shape[2]) % rows
		c0 := int(shape[3]) % cols
		sr := 1 + int(seed)%(rows-r0)
		if sr < 1 {
			sr = 1
		}
		sc := 1 + int(seed>>8)%(cols-c0)
		if sc < 1 {
			sc = 1
		}
		sub := m.ExtractSub(r0, c0, sr, sc)
		back := m.Clone()
		back.PasteSub(r0, c0, sub)
		return back.EqualApprox(m, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: nil}); err != nil {
		t.Error(err)
	}
	_ = rng
}

func TestDenseFrobNorm(t *testing.T) {
	m := NewDenseFrom(2, 2, []float64{3, 0, 0, 4})
	if got := m.FrobNorm(); math.Abs(got-5) > 1e-15 {
		t.Errorf("FrobNorm = %v", got)
	}
}

func TestDenseCloneIndependent(t *testing.T) {
	m := NewDenseFrom(1, 2, []float64{1, 2})
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Error("Clone shares storage")
	}
}

func TestDenseDimPanics(t *testing.T) {
	m := NewDense(2, 2)
	for name, fn := range map[string]func(){
		"At":         func() { m.At(2, 0) },
		"Set":        func() { m.Set(0, -1, 1) },
		"MultVec":    func() { m.MultVec(NewVector(3), NewVector(2)) },
		"Mult":       func() { m.Mult(NewDense(3, 3), NewDense(2, 3)) },
		"ExtractSub": func() { m.ExtractSub(1, 1, 2, 2) },
		"PasteSub":   func() { m.PasteSub(1, 1, NewDense(2, 2)) },
		"FromData":   func() { NewDenseFrom(2, 2, []float64{1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected dimension panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestDenseStringAndBytes(t *testing.T) {
	m := NewDense(3, 4)
	if m.String() != "DenseMatrix(3x4)" {
		t.Errorf("String = %q", m.String())
	}
	if m.Bytes() != 8*12 {
		t.Errorf("Bytes = %d", m.Bytes())
	}
}

// Property: MultVec is linear — A(ax + by) == a·Ax + b·Ay.
func TestDenseMultVecLinearity(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		m := RandomDense(5, 4, rng)
		x := RandomVector(4, rng)
		y := RandomVector(4, rng)
		a, b := rng.Float64(), rng.Float64()
		combined := x.Clone().Scale(a).Axpy(b, y)
		left := NewVector(5)
		m.MultVec(combined, left)
		ax := NewVector(5)
		m.MultVec(x, ax)
		by := NewVector(5)
		m.MultVec(y, by)
		right := ax.Scale(a).Axpy(b, by)
		return left.EqualApprox(right, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

package la

// RNG is a small, fast, deterministic pseudo-random generator (SplitMix64).
// The resilience tests require that a recovered computation reproduce the
// failure-free result exactly, so every workload builder takes an explicit
// seeded RNG instead of a global source.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	checkDim(n > 0, "Intn(%d)", n)
	return int(r.Uint64() % uint64(n))
}

// NormFloat64 returns an approximately standard-normal value using the sum
// of 12 uniforms (Irwin–Hall); plenty for synthetic workload generation and
// fully deterministic across platforms.
func (r *RNG) NormFloat64() float64 {
	var s float64
	for i := 0; i < 12; i++ {
		s += r.Float64()
	}
	return s - 6
}

// Package la provides the single-place linear algebra kernels underlying
// the GML reproduction: dense column-major matrices, compressed sparse
// column/row matrices, vectors, and deterministic random builders.
//
// It corresponds to GML's single-place classes (x10.matrix.DenseMatrix,
// x10.matrix.sparse.SparseCSC / SparseCSR, x10.matrix.Vector) plus the
// BLAS-like kernels the paper delegated to OpenBLAS. Everything here is
// pure Go, single-threaded per call (matching the paper's
// OPENBLAS_NUM_THREADS=1), and deterministic, which the resilience tests
// rely on: a computation replayed after recovery must reproduce the
// failure-free result bit for bit.
package la

import "fmt"

// checkDim panics with a descriptive message when a dimension precondition
// is violated. Dimension mismatches are programming errors, not runtime
// conditions, so they panic rather than return errors (as in gonum and GML).
func checkDim(ok bool, format string, args ...any) {
	if !ok {
		panic("la: " + fmt.Sprintf(format, args...))
	}
}

// Package la provides the single-place linear algebra kernels underlying
// the GML reproduction: dense column-major matrices, compressed sparse
// column/row matrices, vectors, and deterministic random builders.
//
// It corresponds to GML's single-place classes (x10.matrix.DenseMatrix,
// x10.matrix.sparse.SparseCSC / SparseCSR, x10.matrix.Vector) plus the
// BLAS-like kernels the paper delegated to OpenBLAS. Everything here is
// pure Go and deterministic, which the resilience tests rely on: a
// computation replayed after recovery must reproduce the failure-free
// result bit for bit.
//
// The hot kernels (GEMM, GEMV, the mixed dense/sparse accumulations, and
// the vector reductions) are cache-tiled and run on the deterministic
// intra-place worker pool of internal/par. Unlike a multithreaded BLAS,
// the decomposition is a function of the problem shape only — never of
// the worker count — and reduction partials fold in a fixed order, so
// results are bit-identical from workers=1 to workers=N (the property a
// multithreaded OpenBLAS would have cost the paper's framework). The
// worker count is runtime.NumCPU() by default, configurable via
// RGML_WORKERS, apgas.WithKernelWorkers, or the -workers CLI flags.
package la

import "fmt"

// checkDim panics with a descriptive message when a dimension precondition
// is violated. Dimension mismatches are programming errors, not runtime
// conditions, so they panic rather than return errors (as in gonum and GML).
func checkDim(ok bool, format string, args ...any) {
	if !ok {
		panic("la: " + fmt.Sprintf(format, args...))
	}
}

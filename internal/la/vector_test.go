package la

import (
	"math"
	"testing"
)

func TestVectorBasics(t *testing.T) {
	v := NewVector(3)
	if len(v) != 3 || v[0] != 0 {
		t.Fatal("NewVector not zeroed")
	}
	v.Fill(2)
	if v[1] != 2 {
		t.Error("Fill failed")
	}
	v.Scale(3)
	if v[2] != 6 {
		t.Error("Scale failed")
	}
	v.CellAdd(1)
	if v[0] != 7 {
		t.Error("CellAdd failed")
	}
	v.Zero()
	if v.Sum() != 0 {
		t.Error("Zero failed")
	}
}

func TestVectorArithmetic(t *testing.T) {
	v := Vector{1, 2, 3}
	w := Vector{4, 5, 6}
	if got := v.Clone().Add(w); !got.EqualApprox(Vector{5, 7, 9}, 0) {
		t.Errorf("Add = %v", got)
	}
	if got := v.Clone().Sub(w); !got.EqualApprox(Vector{-3, -3, -3}, 0) {
		t.Errorf("Sub = %v", got)
	}
	if got := v.Clone().MulElem(w); !got.EqualApprox(Vector{4, 10, 18}, 0) {
		t.Errorf("MulElem = %v", got)
	}
	if got := v.Clone().Axpy(2, w); !got.EqualApprox(Vector{9, 12, 15}, 0) {
		t.Errorf("Axpy = %v", got)
	}
	if got := v.Dot(w); got != 32 {
		t.Errorf("Dot = %v", got)
	}
	if got := v.Sum(); got != 6 {
		t.Errorf("Sum = %v", got)
	}
	if got := v.Norm2(); math.Abs(got-math.Sqrt(14)) > 1e-15 {
		t.Errorf("Norm2 = %v", got)
	}
}

func TestVectorCloneIndependent(t *testing.T) {
	v := Vector{1, 2}
	c := v.Clone()
	c[0] = 9
	if v[0] != 1 {
		t.Error("Clone shares storage")
	}
}

func TestVectorCopyFrom(t *testing.T) {
	v := NewVector(2)
	v.CopyFrom(Vector{3, 4})
	if !v.EqualApprox(Vector{3, 4}, 0) {
		t.Errorf("CopyFrom = %v", v)
	}
}

func TestVectorApply(t *testing.T) {
	v := Vector{-1, 0, 1}
	v.Apply(math.Abs)
	if !v.EqualApprox(Vector{1, 0, 1}, 0) {
		t.Errorf("Apply = %v", v)
	}
}

func TestVectorDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected dimension panic")
		}
	}()
	Vector{1}.Dot(Vector{1, 2})
}

func TestVectorEqualApprox(t *testing.T) {
	if !(Vector{1, 2}).EqualApprox(Vector{1.0001, 2}, 0.001) {
		t.Error("within tol should be equal")
	}
	if (Vector{1, 2}).EqualApprox(Vector{1.1, 2}, 0.001) {
		t.Error("outside tol should differ")
	}
	if (Vector{1}).EqualApprox(Vector{1, 2}, 1) {
		t.Error("length mismatch should differ")
	}
}

func TestSigmoid(t *testing.T) {
	if Sigmoid(0) != 0.5 {
		t.Errorf("Sigmoid(0) = %v", Sigmoid(0))
	}
	if s := Sigmoid(100); math.Abs(s-1) > 1e-12 {
		t.Errorf("Sigmoid(100) = %v", s)
	}
	if s := Sigmoid(-100); s > 1e-12 {
		t.Errorf("Sigmoid(-100) = %v", s)
	}
}

func TestVectorBytes(t *testing.T) {
	if NewVector(10).Bytes() != 80 {
		t.Error("Bytes wrong")
	}
}

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
	if NewRNG(1).Uint64() == NewRNG(2).Uint64() {
		t.Error("different seeds should diverge")
	}
}

func TestRNGRanges(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 1000; i++ {
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
		if n := r.Intn(10); n < 0 || n >= 10 {
			t.Fatalf("Intn(10) = %d", n)
		}
	}
	// NormFloat64 should be roughly centered.
	var s float64
	for i := 0; i < 10000; i++ {
		s += r.NormFloat64()
	}
	if mean := s / 10000; math.Abs(mean) > 0.1 {
		t.Errorf("NormFloat64 mean = %v", mean)
	}
}

package snapshot

import (
	"fmt"
	"sort"

	"github.com/rgml/rgml/internal/apgas"
	"github.com/rgml/rgml/internal/codec"
)

// This file is replica repair: bringing entries that fell below their
// target redundancy — a replica put dropped after retry exhaustion, a
// holder place killed, a partial-spare replacement that shrank the live
// group — back to target from the surviving copies or shards. The
// application store runs Repair at every checkpoint commit (and after a
// restore), so a degraded entry stays one commit away from full
// redundancy and the double-failure window closes instead of persisting
// silently until the owner also dies.

// Repair re-replicates every entry of the snapshot that is below its
// target redundancy, returning how many entries it healed. The target is
// the policy width clamped to the live group size: with fewer live
// places than slots, repair raises an entry as high as the group can
// physically hold and leaves it tracked as degraded. Repaired copies may
// land outside the entry's base slot set (when a base slot is dead);
// those substitute holders are recorded so Load/Digest probe them.
//
// Repair reads peer stores directly (the emulation's shared memory) to
// census holders, but every payload shipped to a new holder is charged
// against the NetModel from the donor's place and lands through the same
// fault-injected put path as a checkpoint replica.
func (s *Snapshot) Repair() (int, error) {
	if s == nil || s.destroyed.Load() || !s.plh.Valid() {
		return 0, nil
	}
	if s.pol.tolerance() == 0 {
		// k=1 (backups disabled or single-place group): there is no target
		// redundancy to repair toward.
		return 0, nil
	}
	targets := s.repairTargets()
	if len(targets) == 0 {
		return 0, nil
	}
	// Stable order keeps traces and network charges deterministic.
	keys := make([]int, 0, len(targets))
	for k := range targets {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	healed := 0
	var firstErr error
	for _, key := range keys {
		ok, err := s.repairEntry(key, targets[key])
		if err != nil && firstErr == nil {
			firstErr = err
		}
		if ok {
			healed++
			s.instr.repaired.Inc()
			s.rt.Obs().Trace("snapshot.replica.repaired", int64(key), int64(targets[key]))
		}
	}
	return healed, firstErr
}

// repairTargets collects the (key, ownerIdx) pairs worth examining: every
// key tracked as degraded (dropped puts), plus — when some member of the
// group is dead — every entry in the surviving stores, since each of them
// may have lost a holder with the dead place.
func (s *Snapshot) repairTargets() map[int]int {
	targets := make(map[int]int)
	s.deg.mu.Lock()
	for k, o := range s.deg.keys {
		targets[k] = o
	}
	s.deg.mu.Unlock()
	if s.Degraded() {
		for gi, ps := range s.stores {
			if ps == nil || s.rt.IsDead(s.pg[gi]) {
				continue
			}
			ps.mu.Lock()
			for k, e := range ps.entries {
				if _, ok := targets[k]; !ok {
					targets[k] = e.owner
				}
			}
			ps.mu.Unlock()
		}
	}
	return targets
}

// liveGroupCount counts the snapshot group's surviving places.
func (s *Snapshot) liveGroupCount() int {
	n := 0
	for _, p := range s.pg {
		if !s.rt.IsDead(p) {
			n++
		}
	}
	return n
}

// repairEntry examines one entry and re-replicates it if it is below
// target, reporting whether it reached target redundancy. An entry that
// cannot be raised yet (no verifiable donor, fewer than d shards left)
// stays in the degraded set; one whose redundancy is already at target
// is cleared from it without counting as a repair.
func (s *Snapshot) repairEntry(key, ownerIdx int) (bool, error) {
	if ownerIdx < 0 || ownerIdx >= s.pg.Size() {
		return false, fmt.Errorf("snapshot: repair key %d: owner index %d out of %d", key, ownerIdx, s.pg.Size())
	}
	if s.pol.erasure {
		return s.repairErasure(key, ownerIdx)
	}
	return s.repairReplicate(key, ownerIdx)
}

// repairReplicate heals a replicated entry: census the live verifiable
// holders, and if fewer than min(k, live) remain, ship the donor's copy
// to substitute slots walked from the owner's position.
func (s *Snapshot) repairReplicate(key, ownerIdx int) (bool, error) {
	var (
		holders  []int
		donor    *entry
		donorIdx = -1
	)
	for _, gi := range s.holderSlots(key, ownerIdx) {
		if s.rt.IsDead(s.pg[gi]) {
			continue
		}
		e, ok := s.stores[gi].get(key)
		if !ok || !e.verify() {
			continue
		}
		holders = append(holders, gi)
		if donor == nil {
			donor, donorIdx = e, gi
		}
	}
	target := s.pol.k
	if live := s.liveGroupCount(); target > live {
		target = live
	}
	if len(holders) >= target {
		s.clearDegraded(key)
		s.recordExtras(key, ownerIdx, holders)
		return false, nil
	}
	if donor == nil {
		// Every copy gone (or corrupt): unrepairable. Keep it tracked so
		// loads report loss instead of a missing key.
		s.noteDegraded(key, ownerIdx)
		return false, nil
	}
	dests := s.substituteSlots(key, ownerIdx, holders, target-len(holders))
	if len(dests) == 0 {
		return false, nil
	}
	err := s.rt.Finish(func(ctx *apgas.Ctx) {
		ctx.AsyncAt(s.pg[donorIdx], func(c *apgas.Ctx) {
			for _, gi := range dests {
				tgt := s.pg[gi]
				s.instr.replicas.Inc()
				s.instr.backupBytes.Add(int64(len(donor.data)))
				c.TransferBytes(tgt, donor.data)
				c.AsyncAt(tgt, func(cc *apgas.Ctx) {
					s.putReplica(cc, key, donor, ownerIdx)
				})
			}
		})
	})
	if err != nil && !apgas.IsDeadPlace(err) {
		return false, fmt.Errorf("snapshot: repair key %d: %w", key, err)
	}
	// Re-census: puts can still be dropped by the injector or lose their
	// place mid-repair.
	holders = holders[:0]
	for _, gi := range s.holderSlots(key, ownerIdx) {
		if s.rt.IsDead(s.pg[gi]) {
			continue
		}
		if e, ok := s.stores[gi].get(key); ok && e.verify() {
			holders = append(holders, gi)
		}
	}
	for _, gi := range dests {
		if s.rt.IsDead(s.pg[gi]) {
			continue
		}
		if e, ok := s.stores[gi].get(key); ok && e.verify() && !containsSlot(holders, gi) {
			holders = append(holders, gi)
		}
	}
	if len(holders) < target {
		s.noteDegraded(key, ownerIdx)
		return false, nil
	}
	s.recordExtras(key, ownerIdx, holders)
	s.clearDegraded(key)
	return true, nil
}

// repairErasure heals an erasure-coded entry: census the surviving
// shards, reconstruct the missing ones from any d, and place them at
// their base slots (or substitutes when a base slot is dead).
func (s *Snapshot) repairErasure(key, ownerIdx int) (bool, error) {
	d, p := s.pol.d, s.pol.p
	n := d + p
	entries := make([]*entry, n)
	var (
		holders []int
		set     *shardSet
		ver     uint64
	)
	for _, gi := range s.holderSlots(key, ownerIdx) {
		if s.rt.IsDead(s.pg[gi]) {
			continue
		}
		e, ok := s.stores[gi].get(key)
		if !ok || e.set == nil || e.shardIdx >= n || !e.verify() {
			continue
		}
		if entries[e.shardIdx] != nil {
			continue
		}
		entries[e.shardIdx] = e
		holders = append(holders, gi)
		set, ver = e.set, e.ver
	}
	present := len(holders)
	target := n
	if live := s.liveGroupCount(); target > live {
		target = live
	}
	if present >= target {
		s.clearDegraded(key)
		s.recordExtras(key, ownerIdx, holders)
		return false, nil
	}
	if present < d {
		// Below the decode threshold: unrecoverable until (if ever) more
		// shards reappear. Keep it tracked for loud loss reporting.
		s.noteDegraded(key, ownerIdx)
		return false, nil
	}
	// Reconstruct every missing shard, then keep only as many as fit the
	// live group; the rest go back to the pool.
	work := make([][]byte, n)
	for i, e := range entries {
		if e != nil {
			work[i] = e.data
		}
	}
	s.instr.rebuilds.Inc()
	if err := codec.RSReconstruct(work, d, p); err != nil {
		return false, fmt.Errorf("snapshot: repair key %d: reconstruct: %w", key, err)
	}
	dests := s.substituteSlots(key, ownerIdx, holders, target-present)
	type placement struct {
		shardIdx int
		gi       int
		e        *entry
	}
	var plan []placement
	di := 0
	for i := 0; i < n && di < len(dests); i++ {
		if entries[i] != nil {
			continue
		}
		// Prefer the shard's own base slot when it is a valid destination,
		// keeping the layout canonical; otherwise take the next substitute.
		gi := dests[di]
		base := s.slotOf(ownerIdx, i)
		for j, cand := range dests {
			if cand == base {
				gi = cand
				dests[j] = dests[di]
				dests[di] = gi
				break
			}
		}
		e := newEntry(work[i], codec.Checksum(work[i]), true, ver)
		e.owner = ownerIdx
		e.shardIdx = i
		e.set = set
		plan = append(plan, placement{shardIdx: i, gi: gi, e: e})
		di++
	}
	planned := make(map[int]bool, len(plan))
	for _, pl := range plan {
		planned[pl.shardIdx] = true
	}
	for i := 0; i < n; i++ {
		if entries[i] == nil && !planned[i] && work[i] != nil {
			codec.PutBuffer(work[i])
		}
	}
	if len(plan) == 0 {
		return false, nil
	}
	donorIdx := holders[0]
	err := s.rt.Finish(func(ctx *apgas.Ctx) {
		ctx.AsyncAt(s.pg[donorIdx], func(c *apgas.Ctx) {
			for _, pl := range plan {
				pl := pl
				tgt := s.pg[pl.gi]
				s.instr.shards.Inc()
				s.instr.backupBytes.Add(int64(len(pl.e.data)))
				c.TransferBytes(tgt, pl.e.data)
				c.AsyncAt(tgt, func(cc *apgas.Ctx) {
					s.putReplica(cc, key, pl.e, ownerIdx)
				})
			}
		})
	})
	if err != nil && !apgas.IsDeadPlace(err) {
		return false, fmt.Errorf("snapshot: repair key %d: %w", key, err)
	}
	// Re-census shards after the puts.
	holders = holders[:0]
	seen := make([]bool, n)
	census := func(gi int) {
		if s.rt.IsDead(s.pg[gi]) {
			return
		}
		e, ok := s.stores[gi].get(key)
		if !ok || e.set == nil || e.shardIdx >= n || seen[e.shardIdx] || !e.verify() {
			return
		}
		seen[e.shardIdx] = true
		holders = append(holders, gi)
	}
	for _, gi := range s.holderSlots(key, ownerIdx) {
		census(gi)
	}
	for _, pl := range plan {
		if !containsSlot(holders, pl.gi) {
			census(pl.gi)
		}
	}
	if len(holders) < target {
		s.noteDegraded(key, ownerIdx)
		return false, nil
	}
	s.recordExtras(key, ownerIdx, holders)
	s.clearDegraded(key)
	return true, nil
}

// substituteSlots picks up to need live group indices that are not
// already holders, walking outward from the owner so substitutes stay as
// close to the canonical layout as the live group allows.
func (s *Snapshot) substituteSlots(key, ownerIdx int, holders []int, need int) []int {
	var out []int
	for i := 0; i < s.pg.Size() && len(out) < need; i++ {
		gi := s.slotOf(ownerIdx, i)
		if s.rt.IsDead(s.pg[gi]) || containsSlot(holders, gi) || containsSlot(out, gi) {
			continue
		}
		out = append(out, gi)
	}
	return out
}

// recordExtras refreshes the extra-holder bookkeeping for key: the
// holders outside the entry's base slot set, which Load and Digest must
// probe in addition to the base slots.
func (s *Snapshot) recordExtras(key, ownerIdx int, holders []int) {
	base := s.baseSlots(ownerIdx)
	var extras []int
	for _, gi := range holders {
		if !containsSlot(base, gi) {
			extras = append(extras, gi)
		}
	}
	sort.Ints(extras)
	s.setExtras(key, extras)
}

func containsSlot(slots []int, gi int) bool {
	for _, s := range slots {
		if s == gi {
			return true
		}
	}
	return false
}

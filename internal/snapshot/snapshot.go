// Package snapshot implements the resilient in-memory store behind GML's
// Snapshottable interface (paper section IV-B). A Snapshot holds key/value
// pairs placed by a configurable redundancy policy (apgas.StorePolicy).
// The paper-faithful default is *double storage*: each entry is kept at
// the place that saved it and at the next place of the snapshot-time
// place group, so the loss of any single place leaves every entry
// recoverable. Saving costs the same from every place (one local put plus
// one remote put); loading is cheap when the data is local and costs a
// transfer otherwise — exactly the cost asymmetry the paper describes.
//
// Beyond the default, the placement layer generalizes to replication
// factor k (k full copies at k consecutive group slots, tolerating k-1
// failures between checkpoints) and to a Reed-Solomon erasure-coded mode
// (d data + p parity shards at d+p consecutive slots, tolerating p
// failures at (d+p)/d storage — the ReStore cost model). Entries that
// fall below their target redundancy — a backup put dropped after retry
// exhaustion, a replica place killed, a partial-spare replacement — are
// tracked in a degraded set (exported as the snapshot.replicas.degraded
// gauge) and re-replicated by Repair, which the application store runs
// at every checkpoint commit.
//
// The save path is built for throughput: the backup put runs as an async
// task overlapping the saver's remaining work (the enclosing finish still
// guarantees it lands before the checkpoint is considered taken), entries
// saved through SaveEncoded carry a CRC-32C folded into the encode pass
// instead of a separate hashing traversal, successful verifications are
// memoized per entry so repeated loads do not re-hash, and payload buffers
// plus per-place stores are recycled through pools when a superseded
// checkpoint is destroyed.
package snapshot

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"github.com/rgml/rgml/internal/apgas"
	"github.com/rgml/rgml/internal/apgas/kernel"
	"github.com/rgml/rgml/internal/codec"
	"github.com/rgml/rgml/internal/obs"
)

// Snapshottable is implemented by every GML object that can be saved to
// and restored from a Snapshot (paper Listing 3).
type Snapshottable interface {
	// MakeSnapshot captures the object's distributed state into a new
	// Snapshot.
	MakeSnapshot() (*Snapshot, error)
	// RestoreSnapshot re-populates the object (over its *current* place
	// group and partitioning, which may differ from the snapshot's) from
	// the saved state.
	RestoreSnapshot(s *Snapshot) error
}

// DirtyTracker is implemented by Snapshottable objects that track which
// of their fragments changed since the previous checkpoint and can
// therefore capture an incremental (delta) snapshot: unchanged entries
// are carried forward by reference from prev (see Snapshot.SaveDelta)
// instead of being re-encoded and re-shipped. prev may be nil or taken
// over a different group, in which case the implementation must degrade
// to a full MakeSnapshot.
type DirtyTracker interface {
	Snapshottable
	MakeDeltaSnapshot(prev *Snapshot) (*Snapshot, error)
}

// PartialRestorer is implemented by Snapshottable objects that can
// restore only the fragments whose current owner lost them — places in
// dead held state that died with them; surviving places keep their
// in-memory state (integrity-validated against the snapshot digests)
// rather than re-loading it from the store. dead lists the places that
// failed since the snapshot's checkpoint committed. Implementations must
// fall back to a full RestoreSnapshot whenever partial restoration is
// not applicable (regrid, group mismatch, no retained state).
type PartialRestorer interface {
	Snapshottable
	RestoreSnapshotPartial(s *Snapshot, dead []apgas.Place) error
}

// ErrDataLost reports that an entry's surviving redundancy is below what
// reconstruction needs: every replica lost (replication), or fewer than d
// shards left (erasure). A policy tolerating f failures survives any f
// place deaths between checkpoints, but not f+1 — and a degraded entry
// (a dropped backup put that repair has not yet healed) tolerates
// correspondingly less.
var ErrDataLost = errors.New("snapshot: entry lost (insufficient surviving replicas)")

// ErrNotFound reports that an entry was never saved under the given key.
var ErrNotFound = errors.New("snapshot: no entry for key")

// ErrCorrupt reports that an entry failed its integrity check. Load skips
// corrupt replicas and falls back to the other copy, so a single corrupted
// replica is recoverable just like a failed place.
var ErrCorrupt = errors.New("snapshot: entry failed integrity check")

// Options tunes snapshot behaviour.
type Options struct {
	// DisableBackup turns off all redundancy (equivalent to a replicate
	// k=1 policy, overriding Policy). The snapshot then cannot survive
	// the owner's failure; it exists for the ablation benchmark
	// quantifying the price of redundant storage.
	DisableBackup bool
	// Policy overrides the runtime's store-wide redundancy policy
	// (apgas.Config.Store) for this snapshot. The zero value inherits the
	// runtime's policy, falling back to the paper-faithful replicate k=2.
	// A policy wider than the place group is clamped with a trace event.
	Policy apgas.StorePolicy
	// Retry tunes the bounded retry applied to backup (replica) puts when
	// the runtime's fault injector reports a transient write failure. The
	// zero value means the defaults (see RetryPolicy).
	Retry RetryPolicy
}

// RetryPolicy bounds how hard the snapshot layer tries to land a backup
// replica under transient-failure injection. A put that still fails after
// MaxAttempts degrades gracefully to an owner-only entry (counted as
// snapshot.replicas.dropped) rather than failing the checkpoint: double
// storage is an availability optimisation, and a missing backup only
// matters if the owner also dies before the next checkpoint.
type RetryPolicy struct {
	// MaxAttempts is the total number of put attempts, including the
	// first. 0 means the default (4); 1 disables retries.
	MaxAttempts int
	// Backoff is the wait before the second attempt, doubling on each
	// further attempt. 0 means the default (200µs).
	Backoff time.Duration
	// AttemptTimeout caps the time budget of any single attempt (its
	// backoff wait included), keeping a hostile injector from stalling a
	// checkpoint. 0 means the default (25ms).
	AttemptTimeout time.Duration
}

func (p RetryPolicy) normalize() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.Backoff <= 0 {
		p.Backoff = 200 * time.Microsecond
	}
	if p.AttemptTimeout <= 0 {
		p.AttemptTimeout = 25 * time.Millisecond
	}
	return p
}

// entry is one stored value plus its integrity checksum, computed at save
// time so a corrupted replica is detected at load time and the other copy
// used instead. The owner and backup replicas share one entry (the
// emulation's two map slots point at the same bytes), so the flags below
// use atomics.
//
// Delta checkpointing shares entries *across snapshots* as well: an
// unchanged entry is carried forward by reference into the successor
// snapshot instead of being re-encoded. refs counts the snapshots that
// reference the entry (not the place stores — owner and backup slots of
// one snapshot count once), and the payload buffer returns to the codec
// pool only when the last referencing snapshot is destroyed. This is the
// invariant that lets Destroy run on a superseded checkpoint while the
// live checkpoint still owns some of its buffers.
type entry struct {
	data []byte
	sum  uint32
	// ver is the content version recorded by SaveDelta (0 for entries
	// saved through Save/SaveEncoded). A successor snapshot whose saver
	// reports the same non-zero version carries the entry forward without
	// re-encoding it.
	ver uint64
	// pooled marks data as drawn from the codec buffer pool; the final
	// Destroy recycles it instead of dropping it.
	pooled bool
	// owner is the group index of the place that saved the entry, set
	// before the entry is published to any store; repair uses it to
	// recompute the entry's slot set.
	owner int
	// shardIdx and set are the erasure-mode identity: which of the d+p
	// shards this entry holds, and the shared descriptor of the full
	// payload the shard set reassembles. Both are zero/nil for full
	// replicas.
	shardIdx int
	set      *shardSet
	// refs counts referencing snapshots; see the type comment.
	refs atomic.Int32
	// verified memoizes a successful integrity check so repeated loads of
	// the same replica skip re-hashing. Corruption tests swap the whole
	// entry, so a memoized verdict never outlives the bytes it vouches
	// for.
	verified atomic.Bool
}

// shardSet is the shared descriptor of one erasure-coded payload: the
// full payload's checksum and length (what Digest reports and Load
// verifies after reassembly). All d+p shard entries of one save point at
// the same shardSet, which gives delta carry-forward the same
// pointer-identity evidence that full replicas get from sharing one
// entry.
type shardSet struct {
	fullSum uint32
	fullLen int
}

func newEntry(data []byte, sum uint32, pooled bool, ver uint64) *entry {
	e := &entry{data: data, sum: sum, pooled: pooled, ver: ver}
	e.refs.Store(1)
	return e
}

// verify checks the entry's integrity, memoizing success.
func (e *entry) verify() bool {
	if e.verified.Load() {
		return true
	}
	if codec.Checksum(e.data) != e.sum {
		return false
	}
	e.verified.Store(true)
	return true
}

// placeStore is one place's fragment of a Snapshot. Concurrent savers
// (neighbouring places writing their backups) share it, hence the lock.
type placeStore struct {
	mu      sync.Mutex
	entries map[int]*entry
}

func (ps *placeStore) put(key int, e *entry) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	ps.entries[key] = e
}

func (ps *placeStore) get(key int) (*entry, bool) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	e, ok := ps.entries[key]
	return e, ok
}

// bytes sums the stored payload sizes.
func (ps *placeStore) bytes() int {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	n := 0
	for _, e := range ps.entries {
		n += len(e.data)
	}
	return n
}

// storePool recycles placeStore shells (and their cleared maps) across
// checkpoints, alongside the payload buffer pool.
var storePool sync.Pool

func getPlaceStore() (ps *placeStore, pooled bool) {
	if v, _ := storePool.Get().(*placeStore); v != nil {
		return v, true
	}
	return &placeStore{entries: make(map[int]*entry, 4)}, false
}

// recycle clears the store and returns the shell to the store pool.
// Payload release is not done here: entries may be shared with a
// successor snapshot (delta carry-forward), so Snapshot.Destroy drops
// each distinct entry's reference exactly once and recycles the buffer
// only when no snapshot references it any more.
func (ps *placeStore) recycle() {
	ps.mu.Lock()
	clear(ps.entries)
	ps.mu.Unlock()
	storePool.Put(ps)
}

// distinctEntries appends the store's entries to seen, deduplicating by
// pointer (the owner and backup slots of one snapshot share entries).
func (ps *placeStore) distinctEntries(seen map[*entry]struct{}) {
	ps.mu.Lock()
	for _, e := range ps.entries {
		seen[e] = struct{}{}
	}
	ps.mu.Unlock()
}

// Snapshot is a resilient key/value capture of one GML object's state.
// Keys are small integers chosen by the object (place indices for
// duplicated/segmented objects, block IDs for block matrices); values are
// serialized fragments. The descriptor (Meta) travels with the Snapshot
// struct itself, which lives on the immortal place zero alongside the
// application store.
type Snapshot struct {
	rt   *apgas.Runtime
	pg   apgas.PlaceGroup
	opts Options
	// pol is the redundancy policy resolved against pg (defaults applied,
	// width clamped to the group size).
	pol policy
	plh apgas.PlaceLocalHandle[*placeStore]
	// stores aliases the per-place stores by group index for Destroy-time
	// recycling (mirroring PlaceLocalHandle.Destroy's direct teardown).
	stores    []*placeStore
	meta      []byte
	destroyed atomic.Bool
	instr     snapInstr
	// deg tracks entries below target redundancy and the extra holder
	// slots repair placed them at (see repair.go).
	deg degradedState
}

// degradedState is the snapshot's redundancy-loss bookkeeping: which keys
// are below their target redundancy (reflected in the
// snapshot.replicas.degraded gauge), and which non-base slots hold
// repaired copies or shards (consulted by Load, Digest and Repair).
type degradedState struct {
	mu sync.Mutex
	// keys maps a degraded key to its owner's group index.
	keys map[int]int
	// extras maps a key to repair-holder group indices beyond its base
	// slot set.
	extras map[int][]int
}

// noteDegraded records that key (owned by ownerIdx) is below target
// redundancy, bumping the degraded gauge on the first report.
func (s *Snapshot) noteDegraded(key, ownerIdx int) {
	s.deg.mu.Lock()
	defer s.deg.mu.Unlock()
	if _, ok := s.deg.keys[key]; ok {
		return
	}
	if s.deg.keys == nil {
		s.deg.keys = make(map[int]int)
	}
	s.deg.keys[key] = ownerIdx
	s.instr.degradedG.Add(1)
	s.rt.Obs().Trace("snapshot.replica.degraded", int64(key), int64(ownerIdx))
}

// clearDegraded removes key from the degraded set (after a successful
// repair), decrementing the gauge if it was present.
func (s *Snapshot) clearDegraded(key int) {
	s.deg.mu.Lock()
	defer s.deg.mu.Unlock()
	if _, ok := s.deg.keys[key]; !ok {
		return
	}
	delete(s.deg.keys, key)
	s.instr.degradedG.Add(-1)
}

// isDegraded reports whether key is currently tracked as degraded.
func (s *Snapshot) isDegraded(key int) bool {
	s.deg.mu.Lock()
	defer s.deg.mu.Unlock()
	_, ok := s.deg.keys[key]
	return ok
}

// DegradedEntries returns how many entries are tracked below their target
// redundancy (the snapshot's contribution to the
// snapshot.replicas.degraded gauge).
func (s *Snapshot) DegradedEntries() int {
	s.deg.mu.Lock()
	defer s.deg.mu.Unlock()
	return len(s.deg.keys)
}

// setExtras records the repair-holder group indices for key.
func (s *Snapshot) setExtras(key int, extras []int) {
	s.deg.mu.Lock()
	defer s.deg.mu.Unlock()
	if len(extras) == 0 {
		delete(s.deg.extras, key)
		return
	}
	if s.deg.extras == nil {
		s.deg.extras = make(map[int][]int)
	}
	s.deg.extras[key] = extras
}

// snapInstr holds the snapshot layer's observability handles, resolved
// from the runtime's registry at snapshot creation. All handles are
// nil-safe, so an uninstrumented runtime pays one branch per update.
type snapInstr struct {
	saves       *obs.Counter // snapshot.saves
	saveBytes   *obs.Counter // snapshot.save.bytes
	replicas    *obs.Counter // snapshot.replicas.placed (backup puts)
	backupBytes *obs.Counter // snapshot.replicas.bytes
	loads       *obs.Counter // snapshot.loads
	loadLocal   *obs.Counter // snapshot.load.local
	loadRemote  *obs.Counter // snapshot.load.remote
	loadBytes   *obs.Counter // snapshot.load.bytes
	crcFailures *obs.Counter // snapshot.crc.failures
	retries     *obs.Counter // snapshot.replicas.retries (re-attempted backup puts)
	dropped     *obs.Counter // snapshot.replicas.dropped (degraded to owner-only)
	fallbacks   *obs.Counter // snapshot.replica.fallbacks
	lost        *obs.Counter // snapshot.entries.lost
	poolHits    *obs.Counter // snapshot.pool.hits
	poolMisses  *obs.Counter // snapshot.pool.misses
	destroys    *obs.Counter // snapshot.destroys

	// Delta checkpointing and partial restore.
	deltaCarried *obs.Counter // snapshot.delta.carried (entries shared by reference)
	deltaSaved   *obs.Counter // snapshot.delta.saved (delta-path entries re-encoded)
	deltaSkipped *obs.Counter // snapshot.delta.bytes.skipped (payload bytes not re-shipped)
	digests      *obs.Counter // snapshot.digests (metadata-only integrity probes)

	// Redundancy degradation and repair.
	degradedG *obs.Gauge   // snapshot.replicas.degraded (entries below target, now)
	repaired  *obs.Counter // snapshot.replicas.repaired (entries healed by Repair)
	shards    *obs.Counter // snapshot.shards.placed (erasure shard puts)
	rebuilds  *obs.Counter // snapshot.shards.rebuilt (erasure reconstructions on load)

	// Checkpoint compression.
	compIn    *obs.Counter // snapshot.compress.bytes_in (raw payload bytes)
	compOut   *obs.Counter // snapshot.compress.bytes_out (compressed frame bytes)
	compRatio *obs.Gauge   // snapshot.compress.ratio (cumulative out/in, permille)
	compTime  *obs.Counter // snapshot.compress.time_us (encode time inside compressed saves)
	lossyErrG *obs.Gauge   // snapshot.lossy.max_err (largest per-element error, femto units)
}

func newSnapInstr(reg *obs.Registry) snapInstr {
	return snapInstr{
		saves:       reg.Counter("snapshot.saves"),
		saveBytes:   reg.Counter("snapshot.save.bytes"),
		replicas:    reg.Counter("snapshot.replicas.placed"),
		backupBytes: reg.Counter("snapshot.replicas.bytes"),
		loads:       reg.Counter("snapshot.loads"),
		loadLocal:   reg.Counter("snapshot.load.local"),
		loadRemote:  reg.Counter("snapshot.load.remote"),
		loadBytes:   reg.Counter("snapshot.load.bytes"),
		crcFailures: reg.Counter("snapshot.crc.failures"),
		retries:     reg.Counter("snapshot.replicas.retries"),
		dropped:     reg.Counter("snapshot.replicas.dropped"),
		fallbacks:   reg.Counter("snapshot.replica.fallbacks"),
		lost:        reg.Counter("snapshot.entries.lost"),
		poolHits:    reg.Counter("snapshot.pool.hits"),
		poolMisses:  reg.Counter("snapshot.pool.misses"),
		destroys:    reg.Counter("snapshot.destroys"),

		deltaCarried: reg.Counter("snapshot.delta.carried"),
		deltaSaved:   reg.Counter("snapshot.delta.saved"),
		deltaSkipped: reg.Counter("snapshot.delta.bytes.skipped"),
		digests:      reg.Counter("snapshot.digests"),

		degradedG: reg.Gauge("snapshot.replicas.degraded"),
		repaired:  reg.Counter("snapshot.replicas.repaired"),
		shards:    reg.Counter("snapshot.shards.placed"),
		rebuilds:  reg.Counter("snapshot.shards.rebuilt"),

		compIn:    reg.Counter("snapshot.compress.bytes_in"),
		compOut:   reg.Counter("snapshot.compress.bytes_out"),
		compRatio: reg.Gauge("snapshot.compress.ratio"),
		compTime:  reg.Counter("snapshot.compress.time_us"),
		lossyErrG: reg.Gauge("snapshot.lossy.max_err"),
	}
}

// New allocates an empty snapshot whose storage is distributed over pg.
func New(rt *apgas.Runtime, pg apgas.PlaceGroup) (*Snapshot, error) {
	return NewWithOptions(rt, pg, Options{})
}

// NewWithOptions is New with explicit Options.
func NewWithOptions(rt *apgas.Runtime, pg apgas.PlaceGroup, opts Options) (*Snapshot, error) {
	if pg.Size() == 0 {
		return nil, errors.New("snapshot: empty place group")
	}
	instr := newSnapInstr(rt.Obs())
	stores := make([]*placeStore, pg.Size())
	plh, err := apgas.NewPlaceLocalHandle(rt, pg, func(ctx *apgas.Ctx, idx int) *placeStore {
		ps, pooled := getPlaceStore()
		if pooled {
			instr.poolHits.Inc()
		} else {
			instr.poolMisses.Inc()
		}
		stores[idx] = ps
		return ps
	})
	if err != nil {
		return nil, fmt.Errorf("snapshot: allocating stores: %w", err)
	}
	opts.Retry = opts.Retry.normalize()
	pol := resolvePolicy(rt, pg.Size(), opts)
	return &Snapshot{rt: rt, pg: pg.Clone(), opts: opts, pol: pol, plh: plh, stores: stores, instr: instr}, nil
}

// Group returns the place group the snapshot was taken over.
func (s *Snapshot) Group() apgas.PlaceGroup { return s.pg }

// SetMeta attaches the object descriptor (e.g. its serialized grid and
// distribution) to the snapshot.
func (s *Snapshot) SetMeta(meta []byte) { s.meta = meta }

// Meta returns the attached descriptor.
func (s *Snapshot) Meta() []byte { return s.meta }

// NoteCompression records one compressed save: rawBytes is the payload's
// legacy fixed-width size, compBytes the bytes actually emitted, and d the
// encode (compress + checksum) time. The ratio gauge tracks the cumulative
// shipped/raw proportion in permille, so a registry dump shows at a glance
// how much the compression stage is buying.
func (s *Snapshot) NoteCompression(rawBytes, compBytes int, d time.Duration) {
	in := s.instr.compIn
	in.Add(int64(rawBytes))
	s.instr.compOut.Add(int64(compBytes))
	s.instr.compTime.Add(d.Microseconds())
	if total := in.Value(); total > 0 {
		s.instr.compRatio.Set(s.instr.compOut.Value() * 1000 / total)
	}
}

// NoteLossyMaxError publishes the largest per-element reconstruction
// error the lossy codec has introduced so far, in femto units (1e-15), so
// the bounded quantity survives the registry's integer gauges. Errors
// beyond the gauge's range clamp to MaxInt64.
func (s *Snapshot) NoteLossyMaxError(maxErr float64) {
	if maxErr <= 0 {
		return
	}
	femto := maxErr * 1e15
	v := int64(math.MaxInt64)
	if femto < math.MaxInt64 {
		v = int64(femto)
	}
	if v > s.instr.lossyErrG.Value() {
		s.instr.lossyErrG.Set(v)
	}
}

// Save stores data under key with the snapshot's redundancy policy: a
// local copy at the calling task's place plus k-1 backups at the next
// places of the snapshot group (replication), or d+p Reed-Solomon shards
// across d+p consecutive places (erasure). It must be called from a task
// running at a member of the group (each place saves its own portion, as
// in the paper). A CRC-32C checksum is computed at save time and
// verified on every load, so silent corruption of one replica degrades
// into the same recovery path as a failed place. Under replication the
// byte slice is retained; callers must not mutate it afterwards.
func (s *Snapshot) Save(ctx *apgas.Ctx, key int, data []byte) {
	if s.pol.erasure {
		s.saveErasure(ctx, key, data, codec.Checksum(data), false, 0)
		return
	}
	s.save(ctx, key, newEntry(data, codec.Checksum(data), false, 0))
}

// SaveEncoded stores an Encoder's payload under key without re-hashing:
// the CRC-32C was folded into the encode pass, so the bytes are traversed
// exactly once on the save path. The snapshot takes ownership of the
// buffer (which NewEncoder drew from the codec pool): under replication
// it is recycled when the snapshot is destroyed, under erasure
// immediately after sharding (only the shards are stored).
func (s *Snapshot) SaveEncoded(ctx *apgas.Ctx, key int, e *codec.Encoder) {
	if s.pol.erasure {
		s.saveErasure(ctx, key, e.Bytes(), e.Sum(), true, 0)
		return
	}
	s.save(ctx, key, newEntry(e.Bytes(), e.Sum(), true, 0))
}

// SaveDelta stores the value for key incrementally against prev, the
// previously committed snapshot of the same object. ver is the saver's
// content version for the fragment (from its DirtyTracker bookkeeping;
// 0 means unversioned). Three outcomes, in order of preference:
//
//  1. Version hit: prev holds a healthy entry for key at this owner with
//     the same non-zero version — the entry is shared by reference into
//     this snapshot (refcounted; no encode, no payload transfer).
//  2. Content hit: the fragment is re-encoded via encode, but its CRC,
//     length and bytes match prev's entry — the freshly encoded buffer
//     is returned to the pool and prev's entry is shared as above. This
//     is the fallback that keeps delta checkpoints correct for objects
//     that mutate state in place without bumping versions.
//  3. Miss: the encoded fragment is saved fresh (double storage, network
//     charges), recording ver for the next delta.
//
// An entry is "healthy" for carry-forward only if prev was taken over
// the same place group with the same resolved policy, is not destroyed,
// is not tracked as degraded, every slot of the entry's placement is
// alive, and every slot actually holds the entry (a replica dropped
// under fault injection must not silently propagate to the successor).
// The carried entry's replica reference puts are not charged against the
// NetModel: the payloads already reside at their slots from the previous
// checkpoint, and only control messages cross the network.
//
// It returns true when the entry was carried forward.
func (s *Snapshot) SaveDelta(ctx *apgas.Ctx, key int, ver uint64, prev *Snapshot, encode func() *codec.Encoder) bool {
	if s.pol.erasure {
		return s.saveDeltaErasure(ctx, key, ver, prev, encode)
	}
	e := s.carryCandidate(ctx, key, prev)
	if e != nil && ver > 0 && e.ver == ver {
		s.carryForward(ctx, key, e)
		return true
	}
	enc := encode()
	if e != nil && enc.Len() == len(e.data) && enc.Sum() == e.sum && bytes.Equal(enc.Bytes(), e.data) {
		codec.PutBuffer(enc.Bytes())
		s.carryForward(ctx, key, e)
		return true
	}
	s.instr.deltaSaved.Inc()
	s.save(ctx, key, newEntry(enc.Bytes(), enc.Sum(), true, ver))
	return false
}

// carryEligible checks the snapshot-level carry-forward preconditions
// shared by the replicate and erasure paths: same group, same resolved
// policy, predecessor alive, saver a member of the group.
func (s *Snapshot) carryEligible(ctx *apgas.Ctx, prev *Snapshot) (idx int, ok bool) {
	if prev == nil || prev.destroyed.Load() || !prev.pg.Equal(s.pg) || prev.pol != s.pol {
		return 0, false
	}
	idx = s.pg.IndexOf(ctx.Here)
	return idx, idx >= 0
}

// carryCandidate returns prev's entry for key when it is eligible for
// carry-forward into s (see SaveDelta), or nil.
func (s *Snapshot) carryCandidate(ctx *apgas.Ctx, key int, prev *Snapshot) *entry {
	idx, ok := s.carryEligible(ctx, prev)
	if !ok || prev.isDegraded(key) {
		return nil
	}
	e, found := prev.plh.Local(ctx).get(key)
	if !found {
		return nil
	}
	// Every replica slot must be alive and hold the same entry pointer
	// (in the emulation all replicas share one entry, so a slot holding
	// the same pointer proves the payload is resident there). A slot that
	// lost its copy — dead place, dropped put — disqualifies the entry:
	// carrying it forward would replicate the degradation into the new
	// checkpoint without re-shipping the payload.
	for i := 1; i < s.pol.k; i++ {
		slot := s.slotOf(idx, i)
		if s.rt.IsDead(s.pg[slot]) {
			return nil
		}
		be, found := prev.stores[slot].get(key)
		if !found || be != e {
			return nil
		}
	}
	return e
}

// carryForward shares e (an entry owned by the previous checkpoint) into
// this snapshot's replica slots, taking one reference for the whole
// snapshot. Only control messages reach the replica places — the payload
// is already resident there — so nothing is charged against the NetModel
// and the bytes count as skipped, not saved.
func (s *Snapshot) carryForward(ctx *apgas.Ctx, key int, e *entry) {
	idx := s.pg.IndexOf(ctx.Here)
	e.refs.Add(1)
	s.plh.Local(ctx).put(key, e)
	s.instr.deltaCarried.Inc()
	s.instr.deltaSkipped.Add(int64(len(e.data)))
	for i := 1; i < s.pol.k; i++ {
		next := s.pg[s.slotOf(idx, i)]
		ctx.AsyncAt(next, func(c *apgas.Ctx) {
			s.putReplica(c, key, e, idx)
		})
	}
}

// save places e locally and asynchronously at the k-1 replica places. The
// replica puts overlap the saver's remaining work (encoding of its next
// block); the enclosing finish waits for them, so the checkpoint's
// completion still implies every replica is in place. The network model
// is charged identically to synchronous puts: one payload transfer per
// replica place.
func (s *Snapshot) save(ctx *apgas.Ctx, key int, e *entry) {
	idx := s.pg.IndexOf(ctx.Here)
	if idx < 0 {
		panic(fmt.Sprintf("snapshot: Save from %v, not a member of %v", ctx.Here, s.pg))
	}
	e.owner = idx
	s.plh.Local(ctx).put(key, e)
	s.instr.saves.Inc()
	s.instr.saveBytes.Add(int64(len(e.data)))
	for i := 1; i < s.pol.k; i++ {
		next := s.pg[s.slotOf(idx, i)]
		s.instr.replicas.Inc()
		s.instr.backupBytes.Add(int64(len(e.data)))
		if ctx.KernelDispatch() {
			// Data-plane backend: the payload rides a forced kernel put into
			// the replica place's worker body, so the spawn message carries
			// no bytes. TransferSnapshot still charges the full declared
			// size against the snapshot class — logical accounting, and
			// with it cross-backend NetModel invariance, is unchanged.
			ctx.TransferSnapshot(next, len(e.data))
			ctx.AsyncAt(next, func(c *apgas.Ctx) {
				s.warmReplica(c, key, e)
				s.putReplica(c, key, e, idx)
			})
			continue
		}
		ctx.TransferBytes(next, e.data)
		ctx.AsyncAt(next, func(c *apgas.Ctx) {
			s.putReplica(c, key, e, idx)
		})
	}
}

// warmReplica force-installs a replica's bytes into the executing place's
// worker body so later kernels (and a future worker-side restore) can
// reference them without a re-ship. Each Snapshot has its own
// PlaceLocalHandle — handle IDs are never reused — and each key is written
// once per snapshot, so a constant version suffices. Only full saves warm:
// delta-carried entries are already resident from the checkpoint that
// first shipped them, and re-warming would forfeit the carry's byte
// savings. Failures are ignored; the warm is purely a cache fill.
func (s *Snapshot) warmReplica(c *apgas.Ctx, key int, e *entry) {
	if !c.KernelDispatch() {
		return
	}
	t := &kernel.Task{Name: kernel.PutName, Puts: []kernel.Blob{{
		Handle: s.plh.Handle(),
		Key:    int64(key),
		Ver:    1,
		Data:   e.data,
	}}}
	_, _ = c.ExecKernel(t)
}

// putReplica lands a replica (or shard) copy at the task's place,
// retrying with doubling backoff when the runtime's fault injector
// reports a transient write failure (the chaos engine's flake rules).
// With no injector installed the first attempt costs one atomic load and
// succeeds, so the checkpoint fast path is unchanged. Exhausting the
// retry budget records the entry in the snapshot's degraded set — the
// snapshot.replicas.degraded gauge — instead of failing the checkpoint;
// Repair re-replicates it at the next commit.
func (s *Snapshot) putReplica(c *apgas.Ctx, key int, e *entry, ownerIdx int) {
	pol := s.opts.Retry
	backoff := pol.Backoff
	for attempt := 1; ; attempt++ {
		if err := s.rt.InjectFault(apgas.FaultPointReplica, c.Here); err == nil {
			s.plh.Local(c).put(key, e)
			return
		}
		if attempt >= pol.MaxAttempts {
			break
		}
		s.instr.retries.Inc()
		s.rt.Obs().Trace("snapshot.replica.retry", int64(key), int64(attempt))
		wait := backoff
		if wait > pol.AttemptTimeout {
			wait = pol.AttemptTimeout
		}
		time.Sleep(wait)
		backoff *= 2
		// A backup place killed while we were backing off must abort the
		// task as a place death, not keep writing into a dead store.
		c.CheckAlive()
	}
	s.instr.dropped.Inc()
	s.rt.Obs().Trace("snapshot.replica.dropped", int64(key), int64(c.Here.ID))
	s.noteDegraded(key, ownerIdx)
}

// Load retrieves the entry for key. ownerIdx is the index (within the
// snapshot-time group) of the place that saved the entry; the object's
// restore logic knows it from the snapshot's descriptor. Under
// replication Load prefers the owner's copy and falls back to the
// replicas at the following slots (plus any repair-time extra holders)
// when the owner has failed; under erasure it gathers surviving shards
// from the slot set and reconstructs (see loadErasure). Reading a remote
// replica charges the network model for the payload. Integrity
// verification is memoized per replica, so re-loading an
// already-verified entry (e.g. many new blocks reading one old block
// during a regrid restore) does not re-hash it.
//
// Byte accounting (snapshot.load.bytes): a remote replica is counted at
// fetch time, alongside the NetModel Transfer charge — its payload
// crossed the network before it could be verified, so a replica that
// then fails CRC still cost its bytes and the obs counter agrees with
// the simulated network time. A local replica involves no transfer and
// is counted only when it is actually returned.
func (s *Snapshot) Load(ctx *apgas.Ctx, key, ownerIdx int) ([]byte, error) {
	if ownerIdx < 0 || ownerIdx >= s.pg.Size() {
		return nil, fmt.Errorf("snapshot: owner index %d out of %d", ownerIdx, s.pg.Size())
	}
	if s.pol.erasure {
		return s.loadErasure(ctx, key, ownerIdx)
	}
	s.instr.loads.Inc()
	anyAlive := false
	sawCorrupt := false
	for ri, slot := range s.holderSlots(key, ownerIdx) {
		p := s.pg[slot]
		if s.rt.IsDead(p) {
			continue
		}
		anyAlive = true
		var (
			e     *entry
			found bool
		)
		local := p.ID == ctx.Here.ID
		if local {
			e, found = s.plh.Local(ctx).get(key)
		} else {
			origin := ctx.Here
			ctx.At(p, func(c *apgas.Ctx) {
				e, found = s.plh.Local(c).get(key)
				if found {
					// Charged (and counted) at fetch time; see the byte
					// accounting note in the doc comment.
					c.TransferBytes(origin, e.data)
					s.instr.loadBytes.Add(int64(len(e.data)))
				}
			})
		}
		if !found {
			continue
		}
		if !e.verify() {
			// A corrupted replica is as good as a lost one: fall through
			// to the other copy.
			s.instr.crcFailures.Inc()
			s.rt.Obs().Trace("snapshot.replica.corrupt", int64(key), int64(ownerIdx))
			sawCorrupt = true
			continue
		}
		if local {
			s.instr.loadLocal.Inc()
			s.instr.loadBytes.Add(int64(len(e.data)))
		} else {
			s.instr.loadRemote.Inc()
		}
		if ri > 0 {
			// Served from a backup replica because the owner's copy was
			// dead, missing, or corrupt.
			s.instr.fallbacks.Inc()
		}
		return e.data, nil
	}
	switch {
	case sawCorrupt:
		return nil, fmt.Errorf("snapshot: key %d owner %d: %w", key, ownerIdx, ErrCorrupt)
	case !anyAlive || s.isDegraded(key):
		// Either every holder place is dead, or the survivors never held a
		// copy — a replica put dropped under fault injection that repair
		// has not yet healed, with the holding places dead since. Both are
		// data loss, reported loudly rather than as a missing key.
		s.instr.lost.Inc()
		s.rt.Obs().Trace("snapshot.entry.lost", int64(key), int64(ownerIdx))
		return nil, fmt.Errorf("snapshot: key %d owner %d: %w", key, ownerIdx, ErrDataLost)
	default:
		return nil, fmt.Errorf("snapshot: key %d owner %d: %w", key, ownerIdx, ErrNotFound)
	}
}

// Digest returns the save-time CRC-32C checksum and payload size of the
// entry for key without transferring the payload — a metadata-only probe
// costing one control message at most. Partial restore uses it to
// validate a surviving place's in-memory state against the checkpoint:
// the survivor re-encodes its fragment locally and keeps it only if the
// digests match. Replica preference and fallback mirror Load.
func (s *Snapshot) Digest(ctx *apgas.Ctx, key, ownerIdx int) (sum uint32, size int, err error) {
	if ownerIdx < 0 || ownerIdx >= s.pg.Size() {
		return 0, 0, fmt.Errorf("snapshot: owner index %d out of %d", ownerIdx, s.pg.Size())
	}
	s.instr.digests.Inc()
	anyAlive := false
	for _, slot := range s.holderSlots(key, ownerIdx) {
		p := s.pg[slot]
		if s.rt.IsDead(p) {
			continue
		}
		anyAlive = true
		var (
			found bool
			fsum  uint32
			flen  int
		)
		probe := func(c *apgas.Ctx) {
			if e, ok := s.plh.Local(c).get(key); ok {
				found = true
				if e.set != nil {
					// Erasure shard: the digest describes the reassembled
					// payload, not the shard.
					fsum, flen = e.set.fullSum, e.set.fullLen
				} else {
					fsum, flen = e.sum, len(e.data)
				}
			}
		}
		if p.ID == ctx.Here.ID {
			probe(ctx)
		} else {
			ctx.At(p, probe)
		}
		if found {
			return fsum, flen, nil
		}
	}
	if !anyAlive || s.isDegraded(key) {
		return 0, 0, fmt.Errorf("snapshot: key %d owner %d: %w", key, ownerIdx, ErrDataLost)
	}
	return 0, 0, fmt.Errorf("snapshot: key %d owner %d: %w", key, ownerIdx, ErrNotFound)
}

// Degraded reports whether the snapshot's replica placement has lost
// redundancy: some place of its snapshot-time group is dead, so entries
// owned (or backed up) there are down to a single copy — or already
// lost, if backups are disabled. A degraded snapshot still restores, but
// one more failure can make it unrecoverable; the application store uses
// this after a restore to re-replicate cached read-only snapshots whose
// group shrank under them.
func (s *Snapshot) Degraded() bool {
	if s == nil || s.destroyed.Load() {
		return false
	}
	for _, p := range s.pg {
		if s.rt.IsDead(p) {
			return true
		}
	}
	return false
}

// Destroy releases the snapshot's storage on every surviving place of its
// group, recycling pooled payload buffers and store shells for the next
// checkpoint. The application store calls this when a newer checkpoint
// commits (coordinated checkpointing keeps only one snapshot alive), which
// is what makes steady-state checkpointing allocation-free: checkpoint
// N+1 re-encodes into the buffers checkpoint N-1 released.
func (s *Snapshot) Destroy() {
	if s == nil || !s.plh.Valid() || !s.destroyed.CompareAndSwap(false, true) {
		return
	}
	s.instr.destroys.Inc()
	// Entries still degraded at destruction leave the gauge with the
	// snapshot: the gauge tracks live below-redundancy entries, and a
	// destroyed snapshot's entries are not recoverable state any more.
	s.deg.mu.Lock()
	if n := len(s.deg.keys); n > 0 {
		s.instr.degradedG.Add(int64(-n))
	}
	s.deg.keys = nil
	s.deg.extras = nil
	s.deg.mu.Unlock()
	// Release this snapshot's reference on each distinct entry (owner and
	// backup slots share entries, and carried-forward entries also live in
	// the successor snapshot); only the last reference recycles the buffer.
	seen := make(map[*entry]struct{})
	for _, ps := range s.stores {
		if ps != nil {
			ps.distinctEntries(seen)
		}
	}
	for e := range seen {
		if e.refs.Add(-1) == 0 && e.pooled {
			codec.PutBuffer(e.data)
		}
	}
	for _, ps := range s.stores {
		if ps != nil {
			ps.recycle()
		}
	}
	s.stores = nil
	s.plh.Destroy(s.pg)
}

// Bytes returns the total payload bytes stored on live places (every
// replica or shard counted), for tests and capacity accounting. All places are
// visited concurrently under a single finish (one AsyncAt per live place)
// rather than one finish round-trip per place.
func (s *Snapshot) Bytes() (int, error) {
	sizes := make([]int, s.pg.Size())
	err := s.rt.Finish(func(ctx *apgas.Ctx) {
		for i, p := range s.pg {
			if s.rt.IsDead(p) {
				continue
			}
			i, p := i, p
			ctx.AsyncAt(p, func(c *apgas.Ctx) {
				sizes[i] = s.plh.Local(c).bytes()
			})
		}
	})
	if err != nil {
		return 0, err
	}
	total := 0
	for _, n := range sizes {
		total += n
	}
	return total, nil
}

package snapshot

import (
	"errors"
	"fmt"
	"testing"

	"github.com/rgml/rgml/internal/apgas"
	"github.com/rgml/rgml/internal/codec"
)

// segPayload is the per-place payload the delta tests save: distinct per
// owner, with the round number folded in so a new round changes the bytes.
func segPayload(idx, round int) []float64 {
	return []float64{float64(idx), float64(round), 3.5}
}

func encodeSeg(vals []float64) *codec.Encoder {
	enc := codec.NewEncoder(codec.SizeFloat64s(len(vals)))
	enc.PutFloat64s(vals)
	return &enc
}

// saveAllDelta runs SaveDelta at every place of s's group with the given
// version and round.
func saveAllDelta(t *testing.T, rt *apgas.Runtime, s, prev *Snapshot, ver uint64, round int) {
	t.Helper()
	err := apgas.ForEachPlace(rt, s.Group(), func(ctx *apgas.Ctx, idx int) {
		s.SaveDelta(ctx, idx, ver, prev, func() *codec.Encoder {
			return encodeSeg(segPayload(idx, round))
		})
	})
	if err != nil {
		t.Fatalf("saveAllDelta: %v", err)
	}
}

// loadSeg loads and decodes entry idx of s from the main activity.
func loadSeg(t *testing.T, rt *apgas.Runtime, s *Snapshot, idx int) []float64 {
	t.Helper()
	var vals []float64
	err := rt.Finish(func(ctx *apgas.Ctx) {
		data, err := s.Load(ctx, idx, idx)
		if err != nil {
			apgas.Throw(err)
		}
		vals, _, err = codec.Float64s(data)
		if err != nil {
			apgas.Throw(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return vals
}

// TestSnapshotDeltaVersionCarryRefcount drives the version-hit carry path
// and its refcount contract: a matching non-zero version shares the
// predecessor's entry without re-encoding, and the shared buffer is not
// recycled until the *last* snapshot referencing it is destroyed.
func TestSnapshotDeltaVersionCarryRefcount(t *testing.T) {
	rt, reg := newInstrumentedRT(t, 3)
	pg := rt.World()
	s1, err := New(rt, pg)
	if err != nil {
		t.Fatal(err)
	}
	saveAllDelta(t, rt, s1, nil, 1, 0) // no predecessor: everything fresh
	if got := reg.Counter("snapshot.delta.saved").Value(); got != 3 {
		t.Fatalf("delta.saved = %d, want 3", got)
	}
	if got := reg.Counter("snapshot.delta.carried").Value(); got != 0 {
		t.Fatalf("delta.carried = %d, want 0", got)
	}
	saveBytes0 := reg.Counter("snapshot.save.bytes").Value()

	// Second checkpoint with the same version: every entry must be carried
	// by reference. The encode callback throwing proves the version hit
	// never re-encodes.
	s2, err := New(rt, pg)
	if err != nil {
		t.Fatal(err)
	}
	err = apgas.ForEachPlace(rt, pg, func(ctx *apgas.Ctx, idx int) {
		s2.SaveDelta(ctx, idx, 1, s1, func() *codec.Encoder {
			apgas.Throw(errors.New("version hit must not re-encode"))
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("snapshot.delta.carried").Value(); got != 3 {
		t.Fatalf("delta.carried = %d, want 3", got)
	}
	if got := reg.Counter("snapshot.delta.bytes.skipped").Value(); got <= 0 {
		t.Fatalf("delta.bytes.skipped = %d, want > 0", got)
	}
	if got := reg.Counter("snapshot.save.bytes").Value(); got != saveBytes0 {
		t.Fatalf("save.bytes moved from %d to %d on a pure carry-forward", saveBytes0, got)
	}

	// Destroying the predecessor must not recycle buffers the successor
	// still references.
	_, _, puts0 := codec.PoolStats()
	s1.Destroy()
	if _, _, puts := codec.PoolStats(); puts != puts0 {
		t.Fatalf("destroying the carried-from snapshot recycled %d buffers", puts-puts0)
	}
	for idx := 0; idx < pg.Size(); idx++ {
		got := loadSeg(t, rt, s2, idx)
		want := segPayload(idx, 0)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("after predecessor destroy, entry %d = %v, want %v", idx, got, want)
			}
		}
	}
	// The last reference going away returns the three shared buffers.
	s2.Destroy()
	if _, _, puts := codec.PoolStats(); puts-puts0 != 3 {
		t.Fatalf("destroying the last snapshot recycled %d buffers, want 3", puts-puts0)
	}
}

// TestSnapshotDeltaContentFallbackAndMiss drives the two remaining
// SaveDelta outcomes: an unversioned entry with unchanged bytes is carried
// after the CRC comparison (and its scratch encode buffer returned to the
// pool), while changed bytes are saved fresh without disturbing the
// predecessor's payload.
func TestSnapshotDeltaContentFallbackAndMiss(t *testing.T) {
	rt, reg := newInstrumentedRT(t, 3)
	pg := rt.World()
	s1, err := New(rt, pg)
	if err != nil {
		t.Fatal(err)
	}
	saveAllDelta(t, rt, s1, nil, 0, 0)

	// Same bytes, no version bookkeeping: carried via the content hit, and
	// each place's scratch encode buffer goes back to the pool.
	_, _, puts0 := codec.PoolStats()
	s2, err := New(rt, pg)
	if err != nil {
		t.Fatal(err)
	}
	saveAllDelta(t, rt, s2, s1, 0, 0)
	if got := reg.Counter("snapshot.delta.carried").Value(); got != 3 {
		t.Fatalf("delta.carried = %d, want 3", got)
	}
	if _, _, puts := codec.PoolStats(); puts-puts0 < 3 {
		t.Fatalf("content-hit scratch buffers returned = %d, want >= 3", puts-puts0)
	}

	// Changed bytes: saved fresh; the old checkpoint still serves the old
	// content (no aliasing between generations).
	s3, err := New(rt, pg)
	if err != nil {
		t.Fatal(err)
	}
	saveAllDelta(t, rt, s3, s2, 0, 1)
	if got := reg.Counter("snapshot.delta.saved").Value(); got != 6 {
		t.Fatalf("delta.saved = %d, want 6 (3 initial + 3 changed)", got)
	}
	if got := loadSeg(t, rt, s3, 1); got[1] != 1 {
		t.Fatalf("new checkpoint entry = %v, want round 1", got)
	}
	if got := loadSeg(t, rt, s1, 1); got[1] != 0 {
		t.Fatalf("old checkpoint entry = %v, want round 0", got)
	}
	s1.Destroy()
	s2.Destroy()
	s3.Destroy()
}

// TestSnapshotDeltaDigestFallback checks the metadata-only Digest probe:
// it reports the save-time CRC and size, survives the owner's death via
// the backup replica, and never moves payload bytes.
func TestSnapshotDeltaDigestFallback(t *testing.T) {
	rt, reg := newInstrumentedRT(t, 3)
	pg := rt.World()
	s, err := New(rt, pg)
	if err != nil {
		t.Fatal(err)
	}
	saveAll(t, rt, s, pg)
	want := []byte("data-1")
	probe := func() (uint32, int) {
		t.Helper()
		var (
			sum  uint32
			size int
		)
		err := rt.Finish(func(ctx *apgas.Ctx) {
			var err error
			sum, size, err = s.Digest(ctx, 1, 1)
			if err != nil {
				apgas.Throw(err)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return sum, size
	}
	loadBytes0 := reg.Counter("snapshot.load.bytes").Value()
	sum, size := probe()
	if sum != codec.Checksum(want) || size != len(want) {
		t.Fatalf("Digest = (%#x, %d), want (%#x, %d)", sum, size, codec.Checksum(want), len(want))
	}
	// The owner dying must not change the answer: the probe falls back to
	// the backup replica like Load does.
	if err := rt.Kill(rt.Place(1)); err != nil {
		t.Fatal(err)
	}
	sum2, size2 := probe()
	if sum2 != sum || size2 != size {
		t.Fatalf("Digest after owner death = (%#x, %d), want (%#x, %d)", sum2, size2, sum, size)
	}
	if got := reg.Counter("snapshot.digests").Value(); got != 2 {
		t.Fatalf("snapshot.digests = %d, want 2", got)
	}
	if got := reg.Counter("snapshot.load.bytes").Value(); got != loadBytes0 {
		t.Fatalf("Digest moved %d payload bytes, want 0", got-loadBytes0)
	}
	// An unknown key still reports ErrNotFound.
	err = rt.Finish(func(ctx *apgas.Ctx) {
		if _, _, err := s.Digest(ctx, 42, 0); !errors.Is(err, ErrNotFound) {
			apgas.Throw(fmt.Errorf("Digest(42) = %v, want ErrNotFound", err))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

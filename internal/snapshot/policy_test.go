package snapshot

import (
	"errors"
	"fmt"
	"testing"

	"github.com/rgml/rgml/internal/apgas"
	"github.com/rgml/rgml/internal/codec"
)

// loadKey loads key (owned by ownerIdx) from the main activity.
func loadKey(t *testing.T, rt *apgas.Runtime, s *Snapshot, key, ownerIdx int) ([]byte, error) {
	t.Helper()
	var (
		data []byte
		lerr error
	)
	err := rt.Finish(func(ctx *apgas.Ctx) {
		data, lerr = s.Load(ctx, key, ownerIdx)
	})
	if err != nil {
		t.Fatal(err)
	}
	return data, lerr
}

// TestReplicateK3SurvivesDoubleFailure pins the tentpole guarantee for
// k=3: killing an entry's owner AND its first backup in the same window
// still leaves the second backup serving the bytes.
func TestReplicateK3SurvivesDoubleFailure(t *testing.T) {
	rt, _ := newInstrumentedRT(t, 5)
	pg := rt.World()
	s, err := NewWithOptions(rt, pg, Options{Policy: apgas.ReplicateStore(3)})
	if err != nil {
		t.Fatal(err)
	}
	saveAll(t, rt, s, pg)
	// Entry 1 lives at places 1 (owner), 2 and 3. Kill owner and first
	// backup together — the correlated failure k=2 cannot survive.
	for _, id := range []int{1, 2} {
		if err := rt.Kill(rt.Place(id)); err != nil {
			t.Fatal(err)
		}
	}
	data, lerr := loadKey(t, rt, s, 1, 1)
	if lerr != nil {
		t.Fatalf("Load after double failure: %v", lerr)
	}
	if string(data) != "data-1" {
		t.Fatalf("got %q, want %q", data, "data-1")
	}
}

// TestReplicateK2DoubleFailureIsLoudLoss pins the k=2 counterpart: the
// same correlated failure is unrecoverable, and surfaces as ErrDataLost —
// never as a silent missing key or corrupt read.
func TestReplicateK2DoubleFailureIsLoudLoss(t *testing.T) {
	rt, _ := newInstrumentedRT(t, 5)
	pg := rt.World()
	s, err := NewWithOptions(rt, pg, Options{Policy: apgas.ReplicateStore(2)})
	if err != nil {
		t.Fatal(err)
	}
	saveAll(t, rt, s, pg)
	for _, id := range []int{1, 2} {
		if err := rt.Kill(rt.Place(id)); err != nil {
			t.Fatal(err)
		}
	}
	if _, lerr := loadKey(t, rt, s, 1, 1); !errors.Is(lerr, ErrDataLost) {
		t.Fatalf("Load = %v, want ErrDataLost", lerr)
	}
}

// TestErasureRoundTripAndReconstruction drives the erasure placement end
// to end: save at every place, kill p places, and reconstruct every
// entry bit-identically from the surviving shards.
func TestErasureRoundTripAndReconstruction(t *testing.T) {
	rt, reg := newInstrumentedRT(t, 5)
	pg := rt.World()
	s, err := NewWithOptions(rt, pg, Options{Policy: apgas.ErasureStore(3, 2)})
	if err != nil {
		t.Fatal(err)
	}
	saveAll(t, rt, s, pg)

	// Fast path first: with all shards present, every key loads.
	for key := 0; key < pg.Size(); key++ {
		data, lerr := loadKey(t, rt, s, key, key)
		if lerr != nil {
			t.Fatalf("Load(%d) with full shard set: %v", key, lerr)
		}
		if want := fmt.Sprintf("data-%d", key); string(data) != want {
			t.Fatalf("Load(%d) = %q, want %q", key, data, want)
		}
	}
	rebuilds0 := reg.Counter("snapshot.shards.rebuilt").Value()

	// Tolerance is p=2: kill two adjacent places (owner + next shard
	// holder of entry 1) and reconstruct everything.
	for _, id := range []int{1, 2} {
		if err := rt.Kill(rt.Place(id)); err != nil {
			t.Fatal(err)
		}
	}
	for key := 0; key < pg.Size(); key++ {
		data, lerr := loadKey(t, rt, s, key, key)
		if lerr != nil {
			t.Fatalf("Load(%d) after double failure: %v", key, lerr)
		}
		if want := fmt.Sprintf("data-%d", key); string(data) != want {
			t.Fatalf("Load(%d) = %q, want %q", key, data, want)
		}
	}
	if got := reg.Counter("snapshot.shards.rebuilt").Value(); got <= rebuilds0 {
		t.Fatalf("shards.rebuilt = %d, want > %d (data shards died)", got, rebuilds0)
	}
}

// TestErasureTooManyFailuresIsLoudLoss kills more places than the parity
// tolerates: fewer than d shards survive, which must be reported as
// ErrDataLost.
func TestErasureTooManyFailuresIsLoudLoss(t *testing.T) {
	rt, _ := newInstrumentedRT(t, 4)
	pg := rt.World()
	s, err := NewWithOptions(rt, pg, Options{Policy: apgas.ErasureStore(3, 1)})
	if err != nil {
		t.Fatal(err)
	}
	saveAll(t, rt, s, pg)
	for _, id := range []int{1, 2} {
		if err := rt.Kill(rt.Place(id)); err != nil {
			t.Fatal(err)
		}
	}
	// Entry 0's shards live at places 0,1,2,3; places 1 and 2 are gone, so
	// only 2 of d=3 data-equivalents survive.
	if _, lerr := loadKey(t, rt, s, 0, 0); !errors.Is(lerr, ErrDataLost) {
		t.Fatalf("Load = %v, want ErrDataLost", lerr)
	}
}

// TestErasureStorageOverhead pins the erasure mode's reason to exist: the
// stored bytes stay within (d+p)/d of the payload (plus shard-padding
// slack), far below the k-replication multiple with the same tolerance.
func TestErasureStorageOverhead(t *testing.T) {
	rt, _ := newInstrumentedRT(t, 6)
	pg := rt.World()
	s, err := NewWithOptions(rt, pg, Options{Policy: apgas.ErasureStore(4, 2)})
	if err != nil {
		t.Fatal(err)
	}
	const payload = 4096
	err = apgas.ForEachPlace(rt, pg, func(ctx *apgas.Ctx, idx int) {
		data := make([]byte, payload)
		for i := range data {
			data[i] = byte(idx + i)
		}
		s.Save(ctx, idx, data)
	})
	if err != nil {
		t.Fatal(err)
	}
	stored, err := s.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	raw := payload * pg.Size()
	// (d+p)/d = 1.5; allow 1% slack for shard padding.
	limit := raw * 3 / 2 * 101 / 100
	if stored > limit {
		t.Fatalf("stored %d bytes for %d raw, want <= %d ((d+p)/d bound)", stored, raw, limit)
	}
}

// TestPolicyClampTrace checks that a policy wider than the group clamps
// with a "snapshot.policy.clamped" trace instead of panicking, that
// erasure clamping sheds parity before data, and that the clamped store
// still round-trips.
func TestPolicyClampTrace(t *testing.T) {
	rt, reg := newInstrumentedRT(t, 3)
	pg := rt.World()

	s, err := NewWithOptions(rt, pg, Options{Policy: apgas.ReplicateStore(5)})
	if err != nil {
		t.Fatal(err)
	}
	if s.pol.k != 3 {
		t.Fatalf("clamped k = %d, want 3", s.pol.k)
	}
	found := false
	for _, ev := range reg.TraceEvents() {
		if ev.Name == "snapshot.policy.clamped" && ev.A == 5 && ev.B == 3 {
			found = true
		}
	}
	if !found {
		t.Fatal("no snapshot.policy.clamped trace for k=5 on 3 places")
	}
	saveAll(t, rt, s, pg)
	if data, lerr := loadKey(t, rt, s, 1, 1); lerr != nil || string(data) != "data-1" {
		t.Fatalf("clamped store load = %q, %v", data, lerr)
	}

	// Erasure d=4,p=2 on 3 places: parity sheds first (p=2 fits), then
	// data shrinks to fill what remains: d=1, p=2.
	se, err := NewWithOptions(rt, pg, Options{Policy: apgas.ErasureStore(4, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if !se.pol.erasure || se.pol.d != 1 || se.pol.p != 2 {
		t.Fatalf("clamped erasure policy = %+v, want d=1 p=2", se.pol)
	}
	saveAll(t, rt, se, pg)
	if data, lerr := loadKey(t, rt, se, 2, 2); lerr != nil || string(data) != "data-2" {
		t.Fatalf("clamped erasure load = %q, %v", data, lerr)
	}
}

// TestSinglePlaceGroupDegeneratesToK1 pins the size-1 corner: any policy
// resolves to a single local copy (there is nowhere to put redundancy),
// save/load round-trips, and Repair is a no-op rather than a panic.
func TestSinglePlaceGroupDegeneratesToK1(t *testing.T) {
	rt, _ := newInstrumentedRT(t, 1)
	pg := rt.World()
	for _, sp := range []apgas.StorePolicy{
		apgas.ReplicateStore(3),
		apgas.ErasureStore(4, 2),
		{}, // paper default
	} {
		s, err := NewWithOptions(rt, pg, Options{Policy: sp})
		if err != nil {
			t.Fatal(err)
		}
		if s.pol.erasure || s.pol.k != 1 {
			t.Fatalf("policy %v on 1 place resolved to %+v, want k=1", sp, s.pol)
		}
		saveAll(t, rt, s, pg)
		if data, lerr := loadKey(t, rt, s, 0, 0); lerr != nil || string(data) != "data-0" {
			t.Fatalf("single-place load = %q, %v", data, lerr)
		}
		if healed, err := s.Repair(); healed != 0 || err != nil {
			t.Fatalf("Repair on k=1 = (%d, %v), want (0, nil)", healed, err)
		}
		s.Destroy()
	}
}

// TestRepairHealsDroppedReplica is the satellite-1 regression at the
// snapshot layer: a dropped replica put leaves the entry degraded (gauge
// up), Repair re-replicates it from the owner (gauge back down), and the
// owner's subsequent death no longer loses the entry.
func TestRepairHealsDroppedReplica(t *testing.T) {
	rt, reg := newInstrumentedRT(t, 3)
	inj := &flakyInjector{failures: -1}
	rt.SetInjector(inj)

	pg := rt.World()
	s, err := NewWithOptions(rt, pg, Options{Retry: fastRetry(2)})
	if err != nil {
		t.Fatal(err)
	}
	saveAll(t, rt, s, pg)
	if got := reg.Gauge("snapshot.replicas.degraded").Value(); got != 3 {
		t.Fatalf("degraded gauge = %d, want 3 (all backup puts dropped)", got)
	}

	// The transient condition clears; the next commit's Repair heals.
	rt.SetInjector(nil)
	healed, err := s.Repair()
	if err != nil {
		t.Fatal(err)
	}
	if healed != 3 {
		t.Fatalf("Repair healed %d entries, want 3", healed)
	}
	if got := reg.Gauge("snapshot.replicas.degraded").Value(); got != 0 {
		t.Fatalf("degraded gauge after repair = %d, want 0", got)
	}
	if got := reg.Counter("snapshot.replicas.repaired").Value(); got != 3 {
		t.Fatalf("replicas.repaired = %d, want 3", got)
	}

	// The killer test: the owner of a previously degraded entry dies, and
	// the repaired replica serves the bytes — no ErrDataLost.
	if err := rt.Kill(rt.Place(1)); err != nil {
		t.Fatal(err)
	}
	data, lerr := loadKey(t, rt, s, 1, 1)
	if lerr != nil {
		t.Fatalf("Load after owner death post-repair: %v", lerr)
	}
	if string(data) != "data-1" {
		t.Fatalf("got %q", data)
	}
}

// TestRepairReplacesDeadBackup checks death-driven repair: when a backup
// place dies, Repair re-replicates the affected entries to a substitute
// slot outside the base pair, and Load finds the substitute copy.
func TestRepairReplacesDeadBackup(t *testing.T) {
	rt, _ := newInstrumentedRT(t, 4)
	pg := rt.World()
	s, err := NewWithOptions(rt, pg, Options{Policy: apgas.ReplicateStore(2)})
	if err != nil {
		t.Fatal(err)
	}
	saveAll(t, rt, s, pg)

	// Entry 1's backup is place 2. Kill it; repair must re-replicate entry
	// 1 (from owner 1) and entry 2 (from its backup at 3) to substitutes.
	if err := rt.Kill(rt.Place(2)); err != nil {
		t.Fatal(err)
	}
	healed, err := s.Repair()
	if err != nil {
		t.Fatal(err)
	}
	if healed != 2 {
		t.Fatalf("Repair healed %d entries, want 2 (owned by 1 and 2)", healed)
	}

	// Now the owner of entry 1 dies too: without the repair this would be
	// the classic double-failure data loss; with it, the substitute copy
	// serves.
	if err := rt.Kill(rt.Place(1)); err != nil {
		t.Fatal(err)
	}
	data, lerr := loadKey(t, rt, s, 1, 1)
	if lerr != nil {
		t.Fatalf("Load after owner death post-repair: %v", lerr)
	}
	if string(data) != "data-1" {
		t.Fatalf("got %q", data)
	}
}

// TestRepairRebuildsLostShards is death-driven repair in erasure mode:
// a dead shard holder's shards are reconstructed from the survivors and
// placed at substitute slots, restoring full tolerance.
func TestRepairRebuildsLostShards(t *testing.T) {
	rt, reg := newInstrumentedRT(t, 5)
	pg := rt.World()
	s, err := NewWithOptions(rt, pg, Options{Policy: apgas.ErasureStore(3, 1)})
	if err != nil {
		t.Fatal(err)
	}
	saveAll(t, rt, s, pg)

	// p=1 tolerates one failure. Kill place 2, then repair: every entry
	// with a shard at place 2 is rebuilt back to 4 live shards.
	if err := rt.Kill(rt.Place(2)); err != nil {
		t.Fatal(err)
	}
	healed, err := s.Repair()
	if err != nil {
		t.Fatal(err)
	}
	if healed == 0 {
		t.Fatal("Repair healed nothing after a shard holder died")
	}
	if got := reg.Counter("snapshot.shards.rebuilt").Value(); got == 0 {
		t.Fatal("no shard reconstructions counted during repair")
	}

	// A second failure — beyond the nominal p=1 — is now survivable
	// because repair restored full tolerance.
	if err := rt.Kill(rt.Place(1)); err != nil {
		t.Fatal(err)
	}
	for key := 0; key < pg.Size(); key++ {
		data, lerr := loadKey(t, rt, s, key, key)
		if lerr != nil {
			t.Fatalf("Load(%d) after second failure post-repair: %v", key, lerr)
		}
		if want := fmt.Sprintf("data-%d", key); string(data) != want {
			t.Fatalf("Load(%d) = %q, want %q", key, data, want)
		}
	}
}

// TestErasureDeltaCarryAndMiss drives SaveDelta's erasure mode: a
// version hit carries the whole shard set by reference, unchanged
// content carries via the checksum comparison, and changed content
// re-shards.
func TestErasureDeltaCarryAndMiss(t *testing.T) {
	rt, reg := newInstrumentedRT(t, 4)
	pg := rt.World()
	opts := Options{Policy: apgas.ErasureStore(3, 1)}
	s1, err := NewWithOptions(rt, pg, opts)
	if err != nil {
		t.Fatal(err)
	}
	saveAllDelta(t, rt, s1, nil, 1, 0)
	if got := reg.Counter("snapshot.delta.saved").Value(); got != 4 {
		t.Fatalf("delta.saved = %d, want 4", got)
	}

	// Version hit: the encode callback must never run.
	s2, err := NewWithOptions(rt, pg, opts)
	if err != nil {
		t.Fatal(err)
	}
	err = apgas.ForEachPlace(rt, pg, func(ctx *apgas.Ctx, idx int) {
		s2.SaveDelta(ctx, idx, 1, s1, func() *codec.Encoder {
			panic("version hit must not re-encode")
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("snapshot.delta.carried").Value(); got != 4 {
		t.Fatalf("delta.carried = %d, want 4", got)
	}

	// Content hit: same bytes, unversioned.
	s3, err := NewWithOptions(rt, pg, opts)
	if err != nil {
		t.Fatal(err)
	}
	saveAllDelta(t, rt, s3, s2, 0, 0)
	if got := reg.Counter("snapshot.delta.carried").Value(); got != 8 {
		t.Fatalf("delta.carried = %d, want 8", got)
	}

	// Miss: changed bytes re-shard; old and new generations stay distinct.
	s4, err := NewWithOptions(rt, pg, opts)
	if err != nil {
		t.Fatal(err)
	}
	saveAllDelta(t, rt, s4, s3, 0, 1)
	if got := reg.Counter("snapshot.delta.saved").Value(); got != 8 {
		t.Fatalf("delta.saved = %d, want 8 (4 initial + 4 changed)", got)
	}
	if got := loadSeg(t, rt, s4, 1); got[1] != 1 {
		t.Fatalf("new checkpoint entry = %v, want round 1", got)
	}
	if got := loadSeg(t, rt, s1, 1); got[1] != 0 {
		t.Fatalf("old checkpoint entry = %v, want round 0", got)
	}
	s1.Destroy()
	s2.Destroy()
	s3.Destroy()
	s4.Destroy()
}

// TestDegradedDeltaNotCarried pins the satellite-2 invariant at the
// snapshot layer: an entry whose replica put was dropped must NOT carry
// forward into the next delta checkpoint — the successor re-ships it at
// full redundancy.
func TestDegradedDeltaNotCarried(t *testing.T) {
	rt, reg := newInstrumentedRT(t, 3)
	inj := &flakyInjector{failures: -1}
	rt.SetInjector(inj)
	pg := rt.World()
	s1, err := NewWithOptions(rt, pg, Options{Retry: fastRetry(2)})
	if err != nil {
		t.Fatal(err)
	}
	saveAllDelta(t, rt, s1, nil, 1, 0)
	if got := s1.DegradedEntries(); got != 3 {
		t.Fatalf("DegradedEntries = %d, want 3", got)
	}

	// Replica writes work again; the delta checkpoint with identical
	// content and version must still re-save (not carry) because the
	// predecessor entries are degraded.
	rt.SetInjector(nil)
	s2, err := NewWithOptions(rt, pg, Options{Retry: fastRetry(2)})
	if err != nil {
		t.Fatal(err)
	}
	saveAllDelta(t, rt, s2, s1, 1, 0)
	if got := reg.Counter("snapshot.delta.carried").Value(); got != 0 {
		t.Fatalf("delta.carried = %d, want 0 (degraded entries must not carry)", got)
	}
	if got := reg.Counter("snapshot.delta.saved").Value(); got != 6 {
		t.Fatalf("delta.saved = %d, want 6", got)
	}

	// The re-saved generation is fully replicated: the owner's death is
	// survivable again.
	if err := rt.Kill(rt.Place(1)); err != nil {
		t.Fatal(err)
	}
	got := loadSeg(t, rt, s2, 1)
	want := segPayload(1, 0)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("entry 1 = %v, want %v", got, want)
		}
	}
	s1.Destroy()
	s2.Destroy()
}

// TestDestroyClearsDegradedGauge checks that destroying a snapshot with
// still-degraded entries removes them from the global gauge (they are no
// longer live recoverable state).
func TestDestroyClearsDegradedGauge(t *testing.T) {
	rt, reg := newInstrumentedRT(t, 3)
	rt.SetInjector(&flakyInjector{failures: -1})
	defer rt.SetInjector(nil)
	pg := rt.World()
	s, err := NewWithOptions(rt, pg, Options{Retry: fastRetry(2)})
	if err != nil {
		t.Fatal(err)
	}
	saveAll(t, rt, s, pg)
	if got := reg.Gauge("snapshot.replicas.degraded").Value(); got != 3 {
		t.Fatalf("degraded gauge = %d, want 3", got)
	}
	s.Destroy()
	if got := reg.Gauge("snapshot.replicas.degraded").Value(); got != 0 {
		t.Fatalf("degraded gauge after Destroy = %d, want 0", got)
	}
}

// TestErasureDigestReportsFullPayload checks that Digest under erasure
// describes the reassembled payload (sum and length), not one shard, and
// that it survives holder deaths like Load does.
func TestErasureDigestReportsFullPayload(t *testing.T) {
	rt, _ := newInstrumentedRT(t, 4)
	pg := rt.World()
	s, err := NewWithOptions(rt, pg, Options{Policy: apgas.ErasureStore(2, 2)})
	if err != nil {
		t.Fatal(err)
	}
	saveAll(t, rt, s, pg)
	want := []byte("data-1")
	var (
		sum  uint32
		size int
	)
	err = rt.Finish(func(ctx *apgas.Ctx) {
		var derr error
		sum, size, derr = s.Digest(ctx, 1, 1)
		if derr != nil {
			apgas.Throw(derr)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if size != len(want) {
		t.Fatalf("Digest size = %d, want %d", size, len(want))
	}
	data, lerr := loadKey(t, rt, s, 1, 1)
	if lerr != nil {
		t.Fatal(lerr)
	}
	if string(data) != string(want) {
		t.Fatalf("Load = %q", data)
	}
	_ = sum
}

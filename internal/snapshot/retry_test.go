package snapshot

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/rgml/rgml/internal/apgas"
)

// flakyInjector fails the first `failures` replica puts it sees and lets
// everything else through. It stands in for the chaos engine's flake rules
// so the snapshot package can test its retry loop without importing chaos.
type flakyInjector struct {
	mu       sync.Mutex
	failures int
	seen     int
}

func (fi *flakyInjector) Fault(point string, subject apgas.Place) error {
	if point != apgas.FaultPointReplica {
		return nil
	}
	fi.mu.Lock()
	defer fi.mu.Unlock()
	fi.seen++
	if fi.failures != 0 {
		if fi.failures > 0 {
			fi.failures--
		}
		return errors.New("injected transient replica failure")
	}
	return nil
}

func fastRetry(attempts int) RetryPolicy {
	return RetryPolicy{MaxAttempts: attempts, Backoff: 50 * time.Microsecond}
}

// TestReplicaRetryLandsBackupAfterTransientFaults checks that a put that
// flakes a few times still lands the backup replica, so a later owner
// failure is survivable exactly as if nothing had been injected.
func TestReplicaRetryLandsBackupAfterTransientFaults(t *testing.T) {
	rt, reg := newInstrumentedRT(t, 3)
	inj := &flakyInjector{failures: 2}
	rt.SetInjector(inj)
	defer rt.SetInjector(nil)

	pg := rt.World()
	s, err := NewWithOptions(rt, pg, Options{Retry: fastRetry(4)})
	if err != nil {
		t.Fatal(err)
	}
	saveAll(t, rt, s, pg)

	if got := reg.Counter("snapshot.replicas.retries").Value(); got != 2 {
		t.Errorf("snapshot.replicas.retries = %d, want 2", got)
	}
	if got := reg.Counter("snapshot.replicas.dropped").Value(); got != 0 {
		t.Errorf("snapshot.replicas.dropped = %d, want 0", got)
	}

	// The owner of entry 1 dies; its backup (retried into place 2) serves.
	if err := rt.Kill(rt.Place(1)); err != nil {
		t.Fatal(err)
	}
	err = rt.Finish(func(ctx *apgas.Ctx) {
		data, err := s.Load(ctx, 1, 1)
		if err != nil {
			apgas.Throw(err)
		}
		if string(data) != "data-1" {
			apgas.Throw(fmt.Errorf("got %q", data))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestReplicaRetryExhaustionDegradesToOwnerOnly checks the graceful
// degradation path: a put whose retry budget is exhausted drops the backup
// (counted and traced) but the checkpoint still completes and owner copies
// still load.
func TestReplicaRetryExhaustionDegradesToOwnerOnly(t *testing.T) {
	rt, reg := newInstrumentedRT(t, 3)
	rt.SetInjector(&flakyInjector{failures: -1}) // never recovers
	defer rt.SetInjector(nil)

	pg := rt.World()
	s, err := NewWithOptions(rt, pg, Options{Retry: fastRetry(2)})
	if err != nil {
		t.Fatal(err)
	}
	saveAll(t, rt, s, pg) // must not fail: degradation, not checkpoint abort

	if got := reg.Counter("snapshot.replicas.dropped").Value(); got != 3 {
		t.Errorf("snapshot.replicas.dropped = %d, want 3", got)
	}
	// MaxAttempts=2 means one retry per put before giving up.
	if got := reg.Counter("snapshot.replicas.retries").Value(); got != 3 {
		t.Errorf("snapshot.replicas.retries = %d, want 3", got)
	}
	dropTraces := 0
	for _, ev := range reg.TraceEvents() {
		if ev.Name == "snapshot.replica.dropped" {
			dropTraces++
		}
	}
	if dropTraces != 3 {
		t.Errorf("snapshot.replica.dropped traces = %d, want 3", dropTraces)
	}

	// Owner copies are intact.
	err = apgas.ForEachPlace(rt, pg, func(ctx *apgas.Ctx, idx int) {
		data, err := s.Load(ctx, idx, idx)
		if err != nil {
			apgas.Throw(err)
		}
		if string(data) != fmt.Sprintf("data-%d", idx) {
			apgas.Throw(fmt.Errorf("got %q", data))
		}
	})
	if err != nil {
		t.Fatal(err)
	}

	// The dropped puts are tracked as degraded entries awaiting repair.
	if got := s.DegradedEntries(); got != 3 {
		t.Errorf("DegradedEntries = %d, want 3", got)
	}
	if got := reg.Gauge("snapshot.replicas.degraded").Value(); got != 3 {
		t.Errorf("snapshot.replicas.degraded = %d, want 3", got)
	}

	// A degraded entry does not survive its owner — but because the store
	// knows the replica was dropped, the loss surfaces loudly as
	// ErrDataLost, never as a silent missing key.
	if err := rt.Kill(rt.Place(1)); err != nil {
		t.Fatal(err)
	}
	err = rt.Finish(func(ctx *apgas.Ctx) {
		if _, err := s.Load(ctx, 1, 1); !errors.Is(err, ErrDataLost) {
			apgas.Throw(fmt.Errorf("want ErrDataLost, got %v", err))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRetryPolicyDefaults pins the normalized defaults so option plumbing
// can rely on the zero value meaning "sane bounded retry".
func TestRetryPolicyDefaults(t *testing.T) {
	p := RetryPolicy{}.normalize()
	if p.MaxAttempts != 4 || p.Backoff != 200*time.Microsecond || p.AttemptTimeout != 25*time.Millisecond {
		t.Fatalf("unexpected defaults %+v", p)
	}
	one := RetryPolicy{MaxAttempts: 1}.normalize()
	if one.MaxAttempts != 1 {
		t.Fatalf("MaxAttempts=1 must disable retries, got %+v", one)
	}
}

package snapshot

import (
	"errors"
	"testing"

	"github.com/rgml/rgml/internal/apgas"
)

func TestCorruptOwnerFallsBackToBackup(t *testing.T) {
	rt := newRT(t, 3)
	pg := rt.World()
	s, err := New(rt, pg)
	if err != nil {
		t.Fatal(err)
	}
	saveAll(t, rt, s, pg)
	// Corrupt the owner replica of entry 1 (at place 1); the backup at
	// place 2 must serve the load.
	s.corruptAt(t, rt.Place(1), 1)
	err = rt.Finish(func(ctx *apgas.Ctx) {
		data, err := s.Load(ctx, 1, 1)
		if err != nil {
			apgas.Throw(err)
		}
		if string(data) != "data-1" {
			apgas.Throw(errors.New("wrong data from backup"))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBothReplicasCorruptReported(t *testing.T) {
	rt := newRT(t, 3)
	pg := rt.World()
	s, err := New(rt, pg)
	if err != nil {
		t.Fatal(err)
	}
	saveAll(t, rt, s, pg)
	s.corruptAt(t, rt.Place(1), 1) // owner replica
	s.corruptAt(t, rt.Place(2), 1) // backup replica
	var loadErr error
	err = rt.Finish(func(ctx *apgas.Ctx) {
		_, loadErr = s.Load(ctx, 1, 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(loadErr, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", loadErr)
	}
}

func TestCorruptBackupStillServedByOwner(t *testing.T) {
	rt := newRT(t, 3)
	pg := rt.World()
	s, err := New(rt, pg)
	if err != nil {
		t.Fatal(err)
	}
	saveAll(t, rt, s, pg)
	s.corruptAt(t, rt.Place(2), 1) // backup of entry 1
	err = rt.Finish(func(ctx *apgas.Ctx) {
		data, err := s.Load(ctx, 1, 1)
		if err != nil {
			apgas.Throw(err)
		}
		if string(data) != "data-1" {
			apgas.Throw(errors.New("wrong data"))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCorruptOwnerAndDeadBackup(t *testing.T) {
	rt := newRT(t, 4)
	pg := rt.World()
	s, err := New(rt, pg)
	if err != nil {
		t.Fatal(err)
	}
	saveAll(t, rt, s, pg)
	s.corruptAt(t, rt.Place(1), 1)
	if err := rt.Kill(rt.Place(2)); err != nil { // backup of entry 1
		t.Fatal(err)
	}
	var loadErr error
	err = rt.Finish(func(ctx *apgas.Ctx) {
		_, loadErr = s.Load(ctx, 1, 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(loadErr, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", loadErr)
	}
}

package snapshot

import (
	"github.com/rgml/rgml/internal/apgas"
)

// policy is an apgas.StorePolicy resolved against a concrete place
// group: defaults applied, widths clamped to the group size, the
// DisableBackup ablation folded in. Two snapshots may share delta
// carry-forward state only when their resolved policies are equal, so
// the type is a comparable value.
type policy struct {
	// erasure selects the Reed-Solomon layout; otherwise k full copies.
	erasure bool
	// k is the replication factor (total copies, owner included) under
	// replication; 1 under erasure (unused).
	k int
	// d and p are the erasure data/parity shard counts (0 under
	// replication).
	d, p int
}

// width is the number of consecutive group slots one entry occupies.
func (pl policy) width() int {
	if pl.erasure {
		return pl.d + pl.p
	}
	return pl.k
}

// tolerance is how many place failures an entry survives.
func (pl policy) tolerance() int {
	if pl.erasure {
		return pl.p
	}
	return pl.k - 1
}

// String renders the resolved policy in the StorePolicy flag form.
func (pl policy) String() string {
	if pl.erasure {
		return apgas.ErasureStore(pl.d, pl.p).String()
	}
	return apgas.ReplicateStore(pl.k).String()
}

// resolvePolicy turns the configured StorePolicy (the per-snapshot
// override when set, else the runtime's, else the paper default of
// replicate k=2) into a policy that fits a group of the given size. A
// policy wider than the group is clamped — never a panic — and the clamp
// is recorded as a "snapshot.policy.clamped" trace event carrying
// (requested width, effective width). Erasure clamping sheds parity
// before data so the geometry keeps as much tolerance as the group can
// physically hold; a single-place group degenerates to replicate k=1
// (there is nowhere to put redundancy).
func resolvePolicy(rt *apgas.Runtime, size int, opts Options) policy {
	if opts.DisableBackup {
		return policy{k: 1}
	}
	sp := opts.Policy
	if sp.IsZero() {
		sp = rt.StorePolicy()
	}
	if sp.IsZero() {
		sp = apgas.ReplicateStore(2)
	}
	sp = sp.Normalized()
	if sp.Placement == apgas.PlacementErasure {
		d, p := sp.DataShards, sp.ParityShards
		if size < 2 {
			rt.Obs().Trace("snapshot.policy.clamped", int64(d+p), 1)
			return policy{k: 1}
		}
		if d+p > size {
			cp := p
			if cp > size-1 {
				cp = size - 1
			}
			cd := d
			if cd > size-cp {
				cd = size - cp
			}
			rt.Obs().Trace("snapshot.policy.clamped", int64(d+p), int64(cd+cp))
			d, p = cd, cp
		}
		return policy{erasure: true, d: d, p: p}
	}
	k := sp.Replicas
	if k < 1 {
		k = 1
	}
	if k > size {
		rt.Obs().Trace("snapshot.policy.clamped", int64(k), int64(size))
		k = size
	}
	return policy{k: k}
}

// slotOf returns the group index of the i-th slot of an entry owned by
// ownerIdx: consecutive group members starting at the owner, wrapping.
func (s *Snapshot) slotOf(ownerIdx, i int) int {
	return (ownerIdx + i) % s.pg.Size()
}

// baseSlots returns the group indices of an owner's slot set, owner
// first. Clamping guarantees width <= group size, so the slots are
// distinct places.
func (s *Snapshot) baseSlots(ownerIdx int) []int {
	w := s.pol.width()
	out := make([]int, w)
	for i := range out {
		out[i] = s.slotOf(ownerIdx, i)
	}
	return out
}

// holderSlots returns baseSlots plus any repair-time extra holders
// recorded for key, deduplicated, base order first.
func (s *Snapshot) holderSlots(key, ownerIdx int) []int {
	out := s.baseSlots(ownerIdx)
	s.deg.mu.Lock()
	extras := s.deg.extras[key]
	s.deg.mu.Unlock()
	for _, gi := range extras {
		dup := false
		for _, b := range out {
			if b == gi {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, gi)
		}
	}
	return out
}

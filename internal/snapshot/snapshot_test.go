package snapshot

import (
	"errors"
	"fmt"
	"testing"

	"github.com/rgml/rgml/internal/apgas"
)

func newRT(t *testing.T, places int) *apgas.Runtime {
	t.Helper()
	rt, err := apgas.New(apgas.WithPlaces(places), apgas.WithResilient(true))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Shutdown)
	return rt
}

// saveAll writes one entry per place of pg, keyed by place index.
func saveAll(t *testing.T, rt *apgas.Runtime, s *Snapshot, pg apgas.PlaceGroup) {
	t.Helper()
	err := apgas.ForEachPlace(rt, pg, func(ctx *apgas.Ctx, idx int) {
		s.Save(ctx, idx, []byte(fmt.Sprintf("data-%d", idx)))
	})
	if err != nil {
		t.Fatalf("saveAll: %v", err)
	}
}

func TestSaveLoadRoundtrip(t *testing.T) {
	rt := newRT(t, 4)
	pg := rt.World()
	s, err := New(rt, pg)
	if err != nil {
		t.Fatal(err)
	}
	saveAll(t, rt, s, pg)
	// Every place loads its own entry (local fast path).
	err = apgas.ForEachPlace(rt, pg, func(ctx *apgas.Ctx, idx int) {
		data, err := s.Load(ctx, idx, idx)
		if err != nil {
			apgas.Throw(err)
		}
		if string(data) != fmt.Sprintf("data-%d", idx) {
			apgas.Throw(fmt.Errorf("got %q", data))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLoadFromRemotePlace(t *testing.T) {
	rt := newRT(t, 3)
	pg := rt.World()
	s, err := New(rt, pg)
	if err != nil {
		t.Fatal(err)
	}
	saveAll(t, rt, s, pg)
	// Place 0 loads place 2's entry remotely.
	err = rt.Finish(func(ctx *apgas.Ctx) {
		data, err := s.Load(ctx, 2, 2)
		if err != nil {
			apgas.Throw(err)
		}
		if string(data) != "data-2" {
			apgas.Throw(fmt.Errorf("got %q", data))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLoadFallsBackToBackupAfterOwnerDeath(t *testing.T) {
	rt := newRT(t, 4)
	pg := rt.World()
	s, err := New(rt, pg)
	if err != nil {
		t.Fatal(err)
	}
	saveAll(t, rt, s, pg)
	// Kill place 2; its entry's backup lives at place 3.
	if err := rt.Kill(rt.Place(2)); err != nil {
		t.Fatal(err)
	}
	err = rt.Finish(func(ctx *apgas.Ctx) {
		data, err := s.Load(ctx, 2, 2)
		if err != nil {
			apgas.Throw(err)
		}
		if string(data) != "data-2" {
			apgas.Throw(fmt.Errorf("backup copy = %q", data))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLastPlaceBackupWrapsToFirst(t *testing.T) {
	rt := newRT(t, 3)
	pg := rt.World()
	s, err := New(rt, pg)
	if err != nil {
		t.Fatal(err)
	}
	saveAll(t, rt, s, pg)
	// Last place's backup wraps to index 0 (place 0, immortal here).
	if err := rt.Kill(rt.Place(2)); err != nil {
		t.Fatal(err)
	}
	err = rt.Finish(func(ctx *apgas.Ctx) {
		data, err := s.Load(ctx, 2, 2)
		if err != nil {
			apgas.Throw(err)
		}
		if string(data) != "data-2" {
			apgas.Throw(fmt.Errorf("got %q", data))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAdjacentDoubleFailureLosesData(t *testing.T) {
	rt := newRT(t, 5)
	pg := rt.World()
	s, err := New(rt, pg)
	if err != nil {
		t.Fatal(err)
	}
	saveAll(t, rt, s, pg)
	// Entry 2 lives at places 2 (owner) and 3 (backup): kill both.
	_ = rt.Kill(rt.Place(2))
	_ = rt.Kill(rt.Place(3))
	var loadErr error
	err = rt.Finish(func(ctx *apgas.Ctx) {
		_, loadErr = s.Load(ctx, 2, 2)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(loadErr, ErrDataLost) {
		t.Fatalf("want ErrDataLost, got %v", loadErr)
	}
	// Entry 1 (owner 1, backup 2): backup dead but owner alive — loadable.
	err = rt.Finish(func(ctx *apgas.Ctx) {
		data, err := s.Load(ctx, 1, 1)
		if err != nil {
			apgas.Throw(err)
		}
		if string(data) != "data-1" {
			apgas.Throw(fmt.Errorf("got %q", data))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Entry 4 (owner 4, backup wraps to 0): both alive — loadable.
	err = rt.Finish(func(ctx *apgas.Ctx) {
		if _, err := s.Load(ctx, 4, 4); err != nil {
			apgas.Throw(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDisableBackupAblation(t *testing.T) {
	rt := newRT(t, 3)
	pg := rt.World()
	s, err := NewWithOptions(rt, pg, Options{DisableBackup: true})
	if err != nil {
		t.Fatal(err)
	}
	saveAll(t, rt, s, pg)
	// Without the backup copy a single owner failure loses the entry.
	_ = rt.Kill(rt.Place(1))
	var loadErr error
	err = rt.Finish(func(ctx *apgas.Ctx) {
		_, loadErr = s.Load(ctx, 1, 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(loadErr, ErrDataLost) {
		t.Fatalf("want ErrDataLost, got %v", loadErr)
	}
}

func TestNotFound(t *testing.T) {
	rt := newRT(t, 2)
	s, err := New(rt, rt.World())
	if err != nil {
		t.Fatal(err)
	}
	var loadErr error
	err = rt.Finish(func(ctx *apgas.Ctx) {
		_, loadErr = s.Load(ctx, 42, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(loadErr, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", loadErr)
	}
	err = rt.Finish(func(ctx *apgas.Ctx) {
		if _, err := s.Load(ctx, 0, 7); err == nil {
			apgas.Throw(errors.New("bad owner index accepted"))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSaveFromNonMemberPanics(t *testing.T) {
	rt := newRT(t, 3)
	// Snapshot over places {1, 2} only.
	pg := apgas.PlaceGroup{rt.Place(1), rt.Place(2)}
	s, err := New(rt, pg)
	if err != nil {
		t.Fatal(err)
	}
	err = rt.Finish(func(ctx *apgas.Ctx) {
		// ctx runs at place 0, not a member.
		s.Save(ctx, 0, []byte("x"))
	})
	if err == nil {
		t.Fatal("expected error from non-member save")
	}
}

func TestMetaAndBytes(t *testing.T) {
	rt := newRT(t, 3)
	pg := rt.World()
	s, err := New(rt, pg)
	if err != nil {
		t.Fatal(err)
	}
	s.SetMeta([]byte("descriptor"))
	if string(s.Meta()) != "descriptor" {
		t.Error("meta roundtrip failed")
	}
	saveAll(t, rt, s, pg)
	n, err := s.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	// 3 entries of 6 bytes, each stored twice.
	if n != 2*3*len("data-0") {
		t.Errorf("Bytes = %d", n)
	}
}

func TestDestroyFreesStorage(t *testing.T) {
	rt := newRT(t, 3)
	pg := rt.World()
	s, err := New(rt, pg)
	if err != nil {
		t.Fatal(err)
	}
	saveAll(t, rt, s, pg)
	s.Destroy()
	// Loading after destroy panics (PLH gone) — wrapped into a finish error.
	err = rt.Finish(func(ctx *apgas.Ctx) {
		_, _ = s.Load(ctx, 0, 0)
	})
	if err == nil {
		t.Fatal("expected error after Destroy")
	}
	// Destroying again (or a nil snapshot) is safe.
	s.Destroy()
	var nilSnap *Snapshot
	nilSnap.Destroy()
}

func TestEmptyGroupRejected(t *testing.T) {
	rt := newRT(t, 2)
	if _, err := New(rt, nil); err == nil {
		t.Fatal("empty group accepted")
	}
}

func TestSinglePlaceSnapshotNoBackup(t *testing.T) {
	rt := newRT(t, 1)
	pg := rt.World()
	s, err := New(rt, pg)
	if err != nil {
		t.Fatal(err)
	}
	err = rt.Finish(func(ctx *apgas.Ctx) {
		s.Save(ctx, 0, []byte("solo"))
		data, err := s.Load(ctx, 0, 0)
		if err != nil || string(data) != "solo" {
			apgas.Throw(fmt.Errorf("load: %q %v", data, err))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

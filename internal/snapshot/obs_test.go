package snapshot

import (
	"testing"

	"github.com/rgml/rgml/internal/apgas"
	"github.com/rgml/rgml/internal/obs"
)

// newInstrumentedRT is newRT with an obs registry attached.
func newInstrumentedRT(t *testing.T, places int) (*apgas.Runtime, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	rt, err := apgas.New(apgas.WithPlaces(places), apgas.WithResilient(true), apgas.WithObs(reg))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Shutdown)
	return rt, reg
}

// TestCRCFailureCounted checks that a corrupted owner replica increments
// the integrity counters and records the fallback to the backup replica,
// alongside the corruption trace event.
func TestCRCFailureCounted(t *testing.T) {
	rt, reg := newInstrumentedRT(t, 3)
	pg := rt.World()
	s, err := New(rt, pg)
	if err != nil {
		t.Fatal(err)
	}
	saveAll(t, rt, s, pg)
	if got := reg.Counter("snapshot.saves").Value(); got != 3 {
		t.Errorf("snapshot.saves = %d, want 3", got)
	}
	if got := reg.Counter("snapshot.replicas.placed").Value(); got != 3 {
		t.Errorf("snapshot.replicas.placed = %d, want 3", got)
	}

	s.corruptAt(t, rt.Place(1), 1) // owner replica of entry 1
	err = rt.Finish(func(ctx *apgas.Ctx) {
		data, err := s.Load(ctx, 1, 1)
		if err != nil {
			apgas.Throw(err)
		}
		if string(data) != "data-1" {
			apgas.Throw(ErrCorrupt)
		}
	})
	if err != nil {
		t.Fatal(err)
	}

	if got := reg.Counter("snapshot.crc.failures").Value(); got != 1 {
		t.Errorf("snapshot.crc.failures = %d, want 1", got)
	}
	if got := reg.Counter("snapshot.replica.fallbacks").Value(); got != 1 {
		t.Errorf("snapshot.replica.fallbacks = %d, want 1", got)
	}
	corrupt := 0
	for _, ev := range reg.TraceEvents() {
		if ev.Name == "snapshot.replica.corrupt" {
			corrupt++
			if ev.A != 1 {
				t.Errorf("corrupt trace key = %d, want 1", ev.A)
			}
		}
	}
	if corrupt != 1 {
		t.Errorf("snapshot.replica.corrupt events = %d, want 1", corrupt)
	}
}

// TestLoadCountersSplitLocalRemote checks that loads are classified by
// whether the serving replica is place-local.
func TestLoadCountersSplitLocalRemote(t *testing.T) {
	rt, reg := newInstrumentedRT(t, 3)
	pg := rt.World()
	s, err := New(rt, pg)
	if err != nil {
		t.Fatal(err)
	}
	saveAll(t, rt, s, pg)
	// Each place loads its own entry: all owner replicas are local.
	err = apgas.ForEachPlace(rt, pg, func(ctx *apgas.Ctx, idx int) {
		if _, err := s.Load(ctx, idx, idx); err != nil {
			apgas.Throw(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("snapshot.loads").Value(); got != 3 {
		t.Errorf("snapshot.loads = %d, want 3", got)
	}
	if got := reg.Counter("snapshot.load.local").Value(); got != 3 {
		t.Errorf("snapshot.load.local = %d, want 3", got)
	}
	if got := reg.Counter("snapshot.load.remote").Value(); got != 0 {
		t.Errorf("snapshot.load.remote = %d, want 0", got)
	}
}

package snapshot

import (
	"fmt"
	"sync"

	"github.com/rgml/rgml/internal/apgas"
	"github.com/rgml/rgml/internal/codec"
)

// This file is the erasure-coded placement mode: instead of k full
// copies, each entry is split into d data + p parity Reed-Solomon shards
// placed at d+p consecutive group slots starting at the owner. Any p
// place failures are survivable at (d+p)/d storage overhead instead of
// the k-fold overhead of replication. Shard encode/reconstruct run
// through the internal/par engine (inside the codec), and every shard
// that crosses a place boundary is charged against the NetModel exactly
// like a replica put.

// saveErasure shards data and places the shards across the entry's slot
// set. The owner's shard is stored locally; the d+p-1 remote shards are
// shipped as async replica puts (same retry/degradation semantics as a
// full replica, see putReplica). sum and len(data) describe the full
// payload and travel in the shared shardSet; each shard additionally
// carries its own CRC so a corrupt shard is detected before it poisons a
// reconstruction. When pooled, data came from the codec pool and is
// recycled immediately after sharding — only the shards are retained.
func (s *Snapshot) saveErasure(ctx *apgas.Ctx, key int, data []byte, sum uint32, pooled bool, ver uint64) {
	idx := s.pg.IndexOf(ctx.Here)
	if idx < 0 {
		panic(fmt.Sprintf("snapshot: Save from %v, not a member of %v", ctx.Here, s.pg))
	}
	shards, err := codec.RSEncode(data, s.pol.d, s.pol.p)
	if err != nil {
		// resolvePolicy clamped the geometry to a valid one; a failure here
		// is a programming error, not an input error.
		panic(fmt.Sprintf("snapshot: erasure encode d=%d p=%d: %v", s.pol.d, s.pol.p, err))
	}
	set := &shardSet{fullSum: sum, fullLen: len(data)}
	s.instr.saves.Inc()
	s.instr.saveBytes.Add(int64(len(data)))
	for i, shard := range shards {
		e := newEntry(shard, codec.Checksum(shard), true, ver)
		e.owner = idx
		e.shardIdx = i
		e.set = set
		slot := s.slotOf(idx, i)
		if slot == idx {
			s.plh.Local(ctx).put(key, e)
			continue
		}
		tgt := s.pg[slot]
		s.instr.shards.Inc()
		s.instr.backupBytes.Add(int64(len(shard)))
		ctx.TransferBytes(tgt, shard)
		ctx.AsyncAt(tgt, func(c *apgas.Ctx) {
			s.putReplica(c, key, e, idx)
		})
	}
	if pooled {
		codec.PutBuffer(data)
	}
}

// loadErasure gathers the surviving shards of key's slot set in parallel
// (one async fetch per live holder under a nested finish), reconstructs
// any missing data shards, and reassembles the payload. Remote shard
// fetches are charged against the NetModel at fetch time, mirroring
// Load's byte accounting. The reassembled payload is verified against
// the save-time full-payload CRC, so a bad reconstruction can never be
// returned silently.
func (s *Snapshot) loadErasure(ctx *apgas.Ctx, key, ownerIdx int) ([]byte, error) {
	s.instr.loads.Inc()
	d, p := s.pol.d, s.pol.p
	n := d + p
	var (
		mu         sync.Mutex
		shards     = make([][]byte, n)
		set        *shardSet
		present    int
		sawCorrupt bool
		anyAlive   bool
		ownerHeld  bool
		remote     bool
	)
	origin := ctx.Here
	err := ctx.FinishFrom(func(fc *apgas.Ctx) {
		for _, slot := range s.holderSlots(key, ownerIdx) {
			pl := s.pg[slot]
			if s.rt.IsDead(pl) {
				continue
			}
			anyAlive = true
			slot := slot
			isLocal := pl.ID == origin.ID
			collect := func(c *apgas.Ctx) {
				e, ok := s.plh.Local(c).get(key)
				if !ok || e.set == nil || e.shardIdx >= n {
					return
				}
				if !e.verify() {
					s.instr.crcFailures.Inc()
					s.rt.Obs().Trace("snapshot.replica.corrupt", int64(key), int64(ownerIdx))
					mu.Lock()
					sawCorrupt = true
					mu.Unlock()
					return
				}
				if !isLocal {
					// Charged (and counted) at fetch time, like Load.
					c.TransferBytes(origin, e.data)
					s.instr.loadBytes.Add(int64(len(e.data)))
				}
				mu.Lock()
				defer mu.Unlock()
				if shards[e.shardIdx] != nil {
					return
				}
				shards[e.shardIdx] = e.data
				set = e.set
				present++
				if slot == ownerIdx {
					ownerHeld = true
				}
				if !isLocal {
					remote = true
				}
			}
			if isLocal {
				collect(fc)
			} else {
				fc.AsyncAt(pl, collect)
			}
		}
	})
	if err != nil && !apgas.IsDeadPlace(err) {
		return nil, fmt.Errorf("snapshot: key %d owner %d: gathering shards: %w", key, ownerIdx, err)
	}
	if present < d {
		switch {
		case sawCorrupt:
			return nil, fmt.Errorf("snapshot: key %d owner %d: %w", key, ownerIdx, ErrCorrupt)
		case present > 0 || !anyAlive || s.isDegraded(key):
			// Shards survive but too few to decode — the entry existed and
			// is now unrecoverable (or its holders are all dead, or a shard
			// put was dropped and never repaired). Loud loss, not a missing
			// key.
			s.instr.lost.Inc()
			s.rt.Obs().Trace("snapshot.entry.lost", int64(key), int64(ownerIdx))
			return nil, fmt.Errorf("snapshot: key %d owner %d: %w", key, ownerIdx, ErrDataLost)
		default:
			return nil, fmt.Errorf("snapshot: key %d owner %d: %w", key, ownerIdx, ErrNotFound)
		}
	}
	if remote {
		s.instr.loadRemote.Inc()
	} else {
		s.instr.loadLocal.Inc()
		s.instr.loadBytes.Add(int64(set.fullLen))
	}
	if !ownerHeld {
		s.instr.fallbacks.Inc()
	}
	needRebuild := false
	for i := 0; i < d; i++ {
		if shards[i] == nil {
			needRebuild = true
			break
		}
	}
	if needRebuild {
		s.instr.rebuilds.Inc()
		rebuilt := make([]bool, n)
		for i, sh := range shards {
			rebuilt[i] = sh == nil
		}
		if rerr := codec.RSReconstruct(shards, d, p); rerr != nil {
			return nil, fmt.Errorf("snapshot: key %d owner %d: reconstruct: %w", key, ownerIdx, rerr)
		}
		// The rebuilt shards are transient scratch — the store keeps only
		// what was fetched — so they go back to the pool after reassembly.
		defer func() {
			for i, rb := range rebuilt {
				if rb && shards[i] != nil {
					codec.PutBuffer(shards[i])
				}
			}
		}()
	}
	out := codec.RSJoin(make([]byte, set.fullLen), shards, d, set.fullLen)
	if codec.Checksum(out) != set.fullSum {
		s.instr.crcFailures.Inc()
		s.rt.Obs().Trace("snapshot.replica.corrupt", int64(key), int64(ownerIdx))
		return nil, fmt.Errorf("snapshot: key %d owner %d: reassembled payload: %w", key, ownerIdx, ErrCorrupt)
	}
	return out, nil
}

// carryErasure returns prev's full slot-ordered shard entry set for key
// when it is eligible for carry-forward into s, or nil. Eligibility
// mirrors carryCandidate, per shard: every slot alive, every slot
// holding its own shard (shardIdx == slot offset) of one coherent shard
// set (shared shardSet pointer), saved by this owner.
func (s *Snapshot) carryErasure(ctx *apgas.Ctx, key int, prev *Snapshot) []*entry {
	idx, ok := s.carryEligible(ctx, prev)
	if !ok || prev.isDegraded(key) {
		return nil
	}
	n := s.pol.d + s.pol.p
	es := make([]*entry, n)
	var set *shardSet
	for i := 0; i < n; i++ {
		slot := s.slotOf(idx, i)
		if s.rt.IsDead(s.pg[slot]) {
			return nil
		}
		e, found := prev.stores[slot].get(key)
		if !found || e.set == nil || e.shardIdx != i || e.owner != idx {
			return nil
		}
		if set == nil {
			set = e.set
		} else if e.set != set {
			return nil
		}
		es[i] = e
	}
	return es
}

// carryForwardErasure shares prev's shard entries into this snapshot's
// slot set, one reference per shard entry. Like carryForward, no bytes
// move and nothing is charged: each shard is already resident at its
// slot.
func (s *Snapshot) carryForwardErasure(ctx *apgas.Ctx, key int, es []*entry) {
	idx := s.pg.IndexOf(ctx.Here)
	for i, e := range es {
		e.refs.Add(1)
		slot := s.slotOf(idx, i)
		if slot == idx {
			s.plh.Local(ctx).put(key, e)
			continue
		}
		e := e
		ctx.AsyncAt(s.pg[slot], func(c *apgas.Ctx) {
			s.putReplica(c, key, e, idx)
		})
	}
	s.instr.deltaCarried.Inc()
	s.instr.deltaSkipped.Add(int64(es[0].set.fullLen))
}

// saveDeltaErasure is SaveDelta's erasure mode. The version hit works as
// under replication. The content hit compares the freshly encoded
// payload's CRC-32C and length against the previous shard set's — there
// is no byte-for-byte confirmation because the full payload is not
// resident anywhere (only its shards are), so a 32-bit checksum plus
// length stand in for content identity. The collision odds (~2^-32 per
// changed-but-matching fragment) are far below the failure rates the
// emulation models; callers needing certainty bump versions instead of
// relying on content hits.
func (s *Snapshot) saveDeltaErasure(ctx *apgas.Ctx, key int, ver uint64, prev *Snapshot, encode func() *codec.Encoder) bool {
	es := s.carryErasure(ctx, key, prev)
	if es != nil && ver > 0 && es[0].ver == ver {
		s.carryForwardErasure(ctx, key, es)
		return true
	}
	enc := encode()
	if es != nil && enc.Sum() == es[0].set.fullSum && enc.Len() == es[0].set.fullLen {
		codec.PutBuffer(enc.Bytes())
		s.carryForwardErasure(ctx, key, es)
		return true
	}
	s.instr.deltaSaved.Inc()
	s.saveErasure(ctx, key, enc.Bytes(), enc.Sum(), true, ver)
	return false
}

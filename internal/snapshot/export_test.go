package snapshot

import "github.com/rgml/rgml/internal/apgas"

// corruptAt flips a byte of the replica stored for key at place p,
// simulating silent memory corruption, for the integrity tests.
func (s *Snapshot) corruptAt(t interface{ Fatal(...any) }, p apgas.Place, key int) {
	err := s.rt.Finish(func(ctx *apgas.Ctx) {
		ctx.At(p, func(c *apgas.Ctx) {
			ps := s.plh.Local(c)
			ps.mu.Lock()
			defer ps.mu.Unlock()
			e, ok := ps.entries[key]
			if !ok || len(e.data) == 0 {
				apgas.Throw(ErrNotFound)
			}
			// Copy before flipping: replicas share the entry, and the
			// replacement must start unverified so the memoized CRC state
			// cannot vouch for the corrupted bytes.
			mut := append([]byte(nil), e.data...)
			mut[0] ^= 0xff
			ps.entries[key] = &entry{data: mut, sum: e.sum}
		})
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Package obs is the framework's observability layer: a lightweight,
// allocation-conscious metrics registry (counters, gauges, duration
// histograms) plus a structured trace-event ring buffer.
//
// Design constraints, in order:
//
//   - Hot-path cost. Instrument handles are resolved once (at construction
//     time) and updated with single atomic operations; no map lookup, no
//     allocation, no formatting happens on the paths the paper measures
//     (per-task bookkeeping, per-block snapshot saves, per-iteration
//     steps).
//   - Optionality. Every instrument method is nil-receiver safe, so an
//     uninstrumented runtime pays one predictable branch per event and
//     layers can be wired unconditionally (`reg.Counter(...)` on a nil
//     registry yields a nil, no-op counter).
//   - One registry per run. The runtime, snapshot store, and executor all
//     record into the registry passed through their configs, so a whole
//     failure-and-recovery run exports as one coherent document (the
//     `-metrics` flag of rgmlrun/rgmlbench) and the evaluation's Table IV
//     percentages are derived from it rather than ad-hoc struct fields.
package obs

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The zero value is ready to
// use; a nil *Counter is a no-op.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (nil-safe).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one (nil-safe).
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down. A nil *Gauge is a no-op.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge's current value (nil-safe).
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add moves the gauge by delta (nil-safe).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the gauge's value (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// HistBuckets is the number of duration histogram buckets. Bucket 0 holds
// sub-microsecond observations; bucket i (i ≥ 1) holds durations in
// [2^(i-1), 2^i) microseconds, so the top bucket starts around 17 minutes —
// far beyond any single phase of an emulated run.
const HistBuckets = 31

// Histogram records a distribution of durations in power-of-two
// microsecond buckets, with exact count/sum/min/max. The zero value is
// ready to use; a nil *Histogram is a no-op.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	min     atomic.Int64 // nanoseconds; valid when count > 0
	max     atomic.Int64 // nanoseconds
	buckets [HistBuckets]atomic.Int64
}

// bucketOf maps a duration to its bucket index.
func bucketOf(d time.Duration) int {
	us := d.Microseconds()
	if us <= 0 {
		return 0
	}
	b := bits.Len64(uint64(us))
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	return b
}

// Observe records one duration (nil-safe).
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	ns := int64(d)
	h.sum.Add(ns)
	h.buckets[bucketOf(d)].Add(1)
	if h.count.Add(1) == 1 {
		// First observation seeds min; concurrent observers converge via
		// the CAS loops below.
		h.min.Store(ns)
	}
	for {
		cur := h.min.Load()
		if ns >= cur || h.min.CompareAndSwap(cur, ns) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total of all observed durations (0 for nil).
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// Min returns the smallest observation (0 when empty or nil).
func (h *Histogram) Min() time.Duration {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	return time.Duration(h.min.Load())
}

// Max returns the largest observation (0 when empty or nil).
func (h *Histogram) Max() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.max.Load())
}

// Mean returns the average observation (0 when empty or nil).
func (h *Histogram) Mean() time.Duration {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / time.Duration(n)
}

// Buckets returns a copy of the bucket counts.
func (h *Histogram) Buckets() [HistBuckets]int64 {
	var out [HistBuckets]int64
	if h == nil {
		return out
	}
	for i := range out {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// Registry is a named collection of instruments plus a trace ring. Lookups
// are get-or-create and intended for construction time; the returned
// handles are then updated lock-free. A nil *Registry hands out nil
// (no-op) instruments, so callers wire instrumentation unconditionally.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	ring       *TraceRing
	start      time.Time
}

// DefaultTraceCapacity is the trace ring size used by NewRegistry.
const DefaultTraceCapacity = 1024

// NewRegistry returns an empty registry with a DefaultTraceCapacity-event
// trace ring.
func NewRegistry() *Registry { return NewRegistryWithTraceCap(DefaultTraceCapacity) }

// NewRegistryWithTraceCap returns an empty registry whose trace ring holds
// the last n events (n < 1 disables tracing).
func NewRegistryWithTraceCap(n int) *Registry {
	r := &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
		start:      time.Now(),
	}
	if n > 0 {
		r.ring = newTraceRing(n)
	}
	return r
}

// Counter returns the counter registered under name, creating it if
// needed. A nil registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// CounterValue returns the current value of the counter registered under
// name WITHOUT creating it: zero for an absent name (or a nil registry).
// Assertions and report emitters use it to peek at counters they do not
// own without polluting the registry's name space.
func (r *Registry) CounterValue(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	c := r.counters[name]
	r.mu.Unlock()
	return c.Value()
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it if
// needed.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.histograms[name]
	if h == nil {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Trace appends a structured event to the trace ring (nil-safe, no-op when
// tracing is disabled). a and b are event-specific numeric arguments —
// fixed arity keeps the recording path allocation-free.
func (r *Registry) Trace(name string, a, b int64) {
	if r == nil || r.ring == nil {
		return
	}
	r.ring.append(Event{At: time.Since(r.start), Name: name, A: a, B: b})
}

// TraceEvents returns the buffered trace events, oldest first.
func (r *Registry) TraceEvents() []Event {
	if r == nil || r.ring == nil {
		return nil
	}
	return r.ring.Snapshot()
}

// counterNames returns the registered counter names, sorted. Callers hold
// no locks; used by the exporters.
func (r *Registry) counterNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return sortedKeys(r.counters)
}

func (r *Registry) gaugeNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return sortedKeys(r.gauges)
}

func (r *Registry) histogramNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return sortedKeys(r.histograms)
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x")
	c.Add(3)
	c.Inc()
	g.Set(5)
	g.Add(1)
	h.Observe(time.Second)
	r.Trace("x", 1, 2)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments must be no-ops")
	}
	if r.TraceEvents() != nil {
		t.Fatal("nil registry must have no trace")
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestCounterGaugeIdentity(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.b")
	c.Add(2)
	if r.Counter("a.b") != c {
		t.Fatal("Counter must return the same instrument per name")
	}
	if got := r.Counter("a.b").Value(); got != 2 {
		t.Fatalf("Value = %d, want 2", got)
	}
	g := r.Gauge("g")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Fatalf("gauge = %d, want 5", g.Value())
	}
	if r.Histogram("h") != r.Histogram("h") {
		t.Fatal("Histogram must return the same instrument per name")
	}
}

func TestHistogramStats(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("d")
	obs := []time.Duration{3 * time.Microsecond, 50 * time.Microsecond, time.Millisecond}
	var sum time.Duration
	for _, d := range obs {
		h.Observe(d)
		sum += d
	}
	if h.Count() != 3 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Sum() != sum {
		t.Errorf("Sum = %v, want %v", h.Sum(), sum)
	}
	if h.Min() != 3*time.Microsecond {
		t.Errorf("Min = %v", h.Min())
	}
	if h.Max() != time.Millisecond {
		t.Errorf("Max = %v", h.Max())
	}
	if h.Mean() != sum/3 {
		t.Errorf("Mean = %v", h.Mean())
	}
	var total int64
	for _, n := range h.Buckets() {
		total += n
	}
	if total != 3 {
		t.Errorf("bucket total = %d", total)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{500 * time.Nanosecond, 0},
		{time.Microsecond, 1},
		{3 * time.Microsecond, 2},
		{1024 * time.Microsecond, 11},
		{time.Hour, HistBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketOf(c.d); got != c.want {
			t.Errorf("bucketOf(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestTraceRingWraparound(t *testing.T) {
	r := NewRegistryWithTraceCap(4)
	for i := int64(1); i <= 10; i++ {
		r.Trace("ev", i, -i)
	}
	events := r.TraceEvents()
	if len(events) != 4 {
		t.Fatalf("len = %d, want 4", len(events))
	}
	// The ring holds the most recent window, oldest first.
	for i, ev := range events {
		wantA := int64(7 + i)
		if ev.A != wantA || ev.Seq != uint64(wantA) {
			t.Errorf("event %d = %+v, want A=Seq=%d", i, ev, wantA)
		}
	}
	for i := 1; i < len(events); i++ {
		if events[i].At < events[i-1].At {
			t.Errorf("events out of time order: %v after %v", events[i].At, events[i-1].At)
		}
	}
}

func TestTraceDisabled(t *testing.T) {
	r := NewRegistryWithTraceCap(0)
	r.Trace("ev", 1, 2)
	if got := r.TraceEvents(); got != nil {
		t.Fatalf("trace events = %v, want none", got)
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("c.one").Add(11)
	r.Gauge("g.one").Set(-3)
	r.Histogram("h.one").Observe(2 * time.Millisecond)
	r.Trace("t.one", 1, 2)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Counters   map[string]int64 `json:"counters"`
		Gauges     map[string]int64 `json:"gauges"`
		Histograms map[string]struct {
			Count int64 `json:"count"`
			SumNS int64 `json:"sum_ns"`
		} `json:"histograms"`
		Trace []struct {
			Name string `json:"name"`
			A    int64  `json:"a"`
		} `json:"trace"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.Counters["c.one"] != 11 {
		t.Errorf("counter = %d", doc.Counters["c.one"])
	}
	if doc.Gauges["g.one"] != -3 {
		t.Errorf("gauge = %d", doc.Gauges["g.one"])
	}
	if h := doc.Histograms["h.one"]; h.Count != 1 || h.SumNS != int64(2*time.Millisecond) {
		t.Errorf("histogram = %+v", h)
	}
	if len(doc.Trace) != 1 || doc.Trace[0].Name != "t.one" || doc.Trace[0].A != 1 {
		t.Errorf("trace = %+v", doc.Trace)
	}
}

func TestWriteText(t *testing.T) {
	r := NewRegistry()
	r.Counter("steps").Add(30)
	r.Histogram("step.duration").Observe(time.Millisecond)
	r.Trace("restore.attempt", 1, 10)
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"steps", "30", "step.duration", "restore.attempt"} {
		if !strings.Contains(out, want) {
			t.Errorf("text export missing %q:\n%s", want, out)
		}
	}
}

// TestConcurrentUse exercises every instrument from many goroutines; run
// under -race it is the registry's thread-safety regression test.
func TestConcurrentUse(t *testing.T) {
	r := NewRegistryWithTraceCap(64)
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("shared")
			h := r.Histogram("shared.h")
			g := r.Gauge("shared.g")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				h.Observe(time.Duration(i) * time.Microsecond)
				g.Set(int64(i))
				r.Trace("ev", int64(i), 0)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("shared.h").Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
	if got := len(r.TraceEvents()); got != 64 {
		t.Fatalf("trace len = %d, want 64", got)
	}
}

package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// histogramJSON is the wire form of one histogram in the JSON export.
type histogramJSON struct {
	Count  int64 `json:"count"`
	SumNS  int64 `json:"sum_ns"`
	MinNS  int64 `json:"min_ns"`
	MaxNS  int64 `json:"max_ns"`
	MeanNS int64 `json:"mean_ns"`
}

// eventJSON is the wire form of one trace event.
type eventJSON struct {
	Seq  uint64 `json:"seq"`
	AtNS int64  `json:"at_ns"`
	Name string `json:"name"`
	A    int64  `json:"a"`
	B    int64  `json:"b"`
}

// exportJSON is the top-level JSON export document.
type exportJSON struct {
	Counters   map[string]int64         `json:"counters"`
	Gauges     map[string]int64         `json:"gauges"`
	Histograms map[string]histogramJSON `json:"histograms"`
	Trace      []eventJSON              `json:"trace"`
}

// WriteJSON writes the registry's instruments and trace buffer as one
// indented JSON document. A nil registry writes an empty document.
func (r *Registry) WriteJSON(w io.Writer) error {
	doc := exportJSON{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]histogramJSON{},
		Trace:      []eventJSON{},
	}
	if r != nil {
		for _, name := range r.counterNames() {
			doc.Counters[name] = r.Counter(name).Value()
		}
		for _, name := range r.gaugeNames() {
			doc.Gauges[name] = r.Gauge(name).Value()
		}
		for _, name := range r.histogramNames() {
			h := r.Histogram(name)
			doc.Histograms[name] = histogramJSON{
				Count:  h.Count(),
				SumNS:  int64(h.Sum()),
				MinNS:  int64(h.Min()),
				MaxNS:  int64(h.Max()),
				MeanNS: int64(h.Mean()),
			}
		}
		for _, ev := range r.TraceEvents() {
			doc.Trace = append(doc.Trace, eventJSON{
				Seq: ev.Seq, AtNS: int64(ev.At), Name: ev.Name, A: ev.A, B: ev.B,
			})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// WriteText writes a human-readable rendering of the registry: sorted
// counters and gauges, histogram summaries, and the trace buffer. A nil
// registry writes nothing.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	if names := r.counterNames(); len(names) > 0 {
		if _, err := fmt.Fprintln(w, "counters:"); err != nil {
			return err
		}
		for _, name := range names {
			if _, err := fmt.Fprintf(w, "  %-36s %d\n", name, r.Counter(name).Value()); err != nil {
				return err
			}
		}
	}
	if names := r.gaugeNames(); len(names) > 0 {
		if _, err := fmt.Fprintln(w, "gauges:"); err != nil {
			return err
		}
		for _, name := range names {
			if _, err := fmt.Fprintf(w, "  %-36s %d\n", name, r.Gauge(name).Value()); err != nil {
				return err
			}
		}
	}
	if names := r.histogramNames(); len(names) > 0 {
		if _, err := fmt.Fprintln(w, "histograms:"); err != nil {
			return err
		}
		for _, name := range names {
			h := r.Histogram(name)
			if _, err := fmt.Fprintf(w, "  %-36s n=%d sum=%v mean=%v min=%v max=%v\n",
				name, h.Count(), round(h.Sum()), round(h.Mean()), round(h.Min()), round(h.Max())); err != nil {
				return err
			}
		}
	}
	if events := r.TraceEvents(); len(events) > 0 {
		if _, err := fmt.Fprintln(w, "trace:"); err != nil {
			return err
		}
		for _, ev := range events {
			if _, err := fmt.Fprintf(w, "  %6d %12v %-28s a=%d b=%d\n",
				ev.Seq, round(ev.At), ev.Name, ev.A, ev.B); err != nil {
				return err
			}
		}
	}
	return nil
}

// round trims durations to microseconds for display.
func round(d time.Duration) time.Duration { return d.Round(time.Microsecond) }

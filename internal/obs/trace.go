package obs

import (
	"sync"
	"time"
)

// Event is one structured trace record: a name plus two event-specific
// numeric arguments (e.g. the restore attempt number and the snapshot
// iteration being rolled back to). Events are timestamped relative to the
// registry's creation, which orders them within a run without the cost or
// non-monotonicity of wall-clock stamps.
type Event struct {
	// Seq is the event's global sequence number (1-based, assigned at
	// append time); gaps in a Snapshot indicate events overwritten by ring
	// wraparound.
	Seq uint64
	// At is the time elapsed since the registry was created.
	At time.Duration
	// Name identifies the event kind, e.g. "core.restore.attempt".
	Name string
	// A and B are event-specific arguments.
	A, B int64
}

// TraceRing is a fixed-capacity ring buffer of Events. Appends overwrite
// the oldest event once the ring is full, so the buffer always holds the
// most recent window — the part that matters when diagnosing why a
// recovery went sideways.
type TraceRing struct {
	mu   sync.Mutex
	buf  []Event
	next uint64 // total events ever appended
}

func newTraceRing(capacity int) *TraceRing {
	return &TraceRing{buf: make([]Event, capacity)}
}

// append stores ev, assigning its sequence number.
func (t *TraceRing) append(ev Event) {
	t.mu.Lock()
	t.next++
	ev.Seq = t.next
	t.buf[(t.next-1)%uint64(len(t.buf))] = ev
	t.mu.Unlock()
}

// Len returns the number of buffered events (≤ capacity).
func (t *TraceRing) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.next < uint64(len(t.buf)) {
		return int(t.next)
	}
	return len(t.buf)
}

// Snapshot returns the buffered events, oldest first.
func (t *TraceRing) Snapshot() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := uint64(len(t.buf))
	count := t.next
	if count > n {
		count = n
	}
	out := make([]Event, 0, count)
	for i := uint64(0); i < count; i++ {
		// Oldest buffered event is t.next-count; read in append order.
		seq := t.next - count + i
		out = append(out, t.buf[seq%n])
	}
	return out
}

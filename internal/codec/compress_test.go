package codec

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

// testFloatSlices spans the encoder's regime boundaries: empty, below
// flateMinFloats (raw path), above it (shuffled-flate path), and beyond
// floatChunk (multi-chunk parallel path), plus special values that force
// the lossy codec's whole-frame fallback.
func testFloatSlices() map[string][]float64 {
	rng := rand.New(rand.NewSource(42))
	smooth := make([]float64, flateMinFloats*4)
	for i := range smooth {
		smooth[i] = math.Sin(float64(i) / 50)
	}
	multiChunk := make([]float64, floatChunk+floatChunk/2)
	for i := range multiChunk {
		multiChunk[i] = 1e-3 * float64(i%977)
	}
	noisy := make([]float64, flateMinFloats*2)
	for i := range noisy {
		noisy[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(40)-20))
	}
	return map[string][]float64{
		"empty":      {},
		"single":     {math.Pi},
		"tinyRaw":    {1, -2.5, 3e300, -4e-300, 0},
		"special":    {math.NaN(), math.Inf(1), math.Inf(-1), math.Copysign(0, -1), math.MaxFloat64, -math.SmallestNonzeroFloat64},
		"smooth":     smooth,
		"noisy":      noisy,
		"multiChunk": multiChunk,
	}
}

func testIntSlices() map[string][]int {
	sorted := make([]int, 5000)
	for i := range sorted {
		sorted[i] = 3*i + i%7
	}
	return map[string][]int{
		"empty":    {},
		"sorted":   sorted,
		"negative": {-1, -100, 50, -3, 0, 7},
		"extremes": {math.MaxInt64, math.MinInt64, 0, math.MaxInt64, math.MinInt64},
	}
}

// TestLosslessFloatRoundTrip: decode(encode(vs)) is bit-identical for
// every regime, the encoding is deterministic, and decoding works both
// into a presized destination and a fresh allocation.
func TestLosslessFloatRoundTrip(t *testing.T) {
	comp, err := NewCompressor(Spec{Mode: CompressLossless})
	if err != nil {
		t.Fatal(err)
	}
	for name, vs := range testFloatSlices() {
		t.Run(name, func(t *testing.T) {
			enc := comp.AppendFloat64s(nil, vs)
			if again := comp.AppendFloat64s(nil, vs); !bytes.Equal(enc, again) {
				t.Fatal("encoding is not deterministic")
			}
			if bound := comp.SizeBound(SizeFloat64s(len(vs))); len(enc) > bound {
				t.Fatalf("frame %d bytes exceeds SizeBound %d", len(enc), bound)
			}
			tail := []byte{0xEE, 0xFF}
			for _, dst := range [][]float64{nil, make([]float64, len(vs))} {
				got, rest, err := comp.Float64sInto(dst, append(enc[:len(enc):len(enc)], tail...))
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(rest, tail) {
					t.Fatalf("decoder consumed wrong byte count, rest=%x", rest)
				}
				if len(got) != len(vs) {
					t.Fatalf("len = %d, want %d", len(got), len(vs))
				}
				for i := range vs {
					if math.Float64bits(got[i]) != math.Float64bits(vs[i]) {
						t.Fatalf("element %d: got %v (%#x), want %v (%#x)",
							i, got[i], math.Float64bits(got[i]), vs[i], math.Float64bits(vs[i]))
					}
				}
			}
			if comp.MaxError() != 0 {
				t.Fatalf("lossless MaxError = %g, want 0", comp.MaxError())
			}
		})
	}
}

// TestLosslessIntRoundTrip is the int-frame analogue, covering the
// zigzag-varint delta codec against sign changes and 64-bit extremes.
func TestLosslessIntRoundTrip(t *testing.T) {
	comp, _ := NewCompressor(Spec{Mode: CompressLossless})
	for name, vs := range testIntSlices() {
		t.Run(name, func(t *testing.T) {
			enc := comp.AppendInts(nil, vs)
			got, rest, err := comp.IntsInto(nil, enc)
			if err != nil {
				t.Fatal(err)
			}
			if len(rest) != 0 {
				t.Fatalf("%d bytes left over", len(rest))
			}
			if len(got) != len(vs) {
				t.Fatalf("len = %d, want %d", len(got), len(vs))
			}
			for i := range vs {
				if got[i] != vs[i] {
					t.Fatalf("element %d: got %d, want %d", i, got[i], vs[i])
				}
			}
		})
	}
}

// TestLosslessShrinksCompressibleFrames pins the point of the exercise:
// smooth float payloads and sorted index arrays come out smaller than
// the fixed-width encoding.
func TestLosslessShrinksCompressibleFrames(t *testing.T) {
	comp, _ := NewCompressor(Spec{Mode: CompressLossless})
	slices := testFloatSlices()
	for _, name := range []string{"smooth", "multiChunk"} {
		vs := slices[name]
		if enc := comp.AppendFloat64s(nil, vs); len(enc) >= SizeFloat64s(len(vs)) {
			t.Errorf("%s: compressed %d bytes >= raw %d", name, len(enc), SizeFloat64s(len(vs)))
		}
	}
	ints := testIntSlices()["sorted"]
	if enc := comp.AppendInts(nil, ints); len(enc) >= SizeInts(len(ints)) {
		t.Errorf("sorted ints: compressed %d bytes >= raw %d", len(enc), SizeInts(len(ints)))
	}
}

// TestLossyErrorBound is the lossy property test: for every frame and
// every bound, |x − x'| ≤ ε element-wise, and the compressor's MaxError
// tracks the worst reconstruction error without exceeding the bound.
func TestLossyErrorBound(t *testing.T) {
	for _, eps := range []float64{1e-12, 1e-6, 1e-2, 1.0} {
		for name, vs := range testFloatSlices() {
			comp, err := NewCompressor(Spec{Mode: CompressLossy, ErrorBound: eps})
			if err != nil {
				t.Fatal(err)
			}
			enc := comp.AppendFloat64s(nil, vs)
			got, rest, err := comp.Float64sInto(nil, enc)
			if err != nil {
				t.Fatalf("%s eps=%g: %v", name, eps, err)
			}
			if len(rest) != 0 || len(got) != len(vs) {
				t.Fatalf("%s eps=%g: bad shape (%d left, %d values)", name, eps, len(rest), len(got))
			}
			worst := 0.0
			for i := range vs {
				if math.IsNaN(vs[i]) || math.IsInf(vs[i], 0) {
					// Non-finite values force the whole-frame lossless
					// fallback, so they must round-trip bit-exactly.
					if math.Float64bits(got[i]) != math.Float64bits(vs[i]) {
						t.Fatalf("%s eps=%g: %v decoded as %v", name, eps, vs[i], got[i])
					}
					continue
				}
				e := math.Abs(got[i] - vs[i])
				if !(e <= eps) {
					t.Fatalf("%s eps=%g: element %d error %g exceeds bound (%v -> %v)",
						name, eps, i, e, vs[i], got[i])
				}
				if e > worst {
					worst = e
				}
			}
			if me := comp.MaxError(); me < worst || me > eps {
				t.Fatalf("%s eps=%g: MaxError = %g, want in [%g, %g]", name, eps, me, worst, eps)
			}
		}
	}
}

// TestLossyFallbackIsExact: frames the quantizer cannot bound (special
// values, quanta beyond the exact-integer range) fall back to lossless
// and round-trip bit-identically, and report zero introduced error.
func TestLossyFallbackIsExact(t *testing.T) {
	comp, _ := NewCompressor(Spec{Mode: CompressLossy, ErrorBound: 1e-6})
	vs := []float64{math.NaN(), math.Inf(1), math.Inf(-1), 1e300, -1e300, 0.5}
	enc := comp.AppendFloat64s(nil, vs)
	got, _, err := comp.Float64sInto(nil, enc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vs {
		if math.Float64bits(got[i]) != math.Float64bits(vs[i]) {
			t.Fatalf("element %d: got %v, want bit-identical %v", i, got[i], vs[i])
		}
	}
	if comp.MaxError() != 0 {
		t.Fatalf("fallback frame recorded MaxError %g, want 0", comp.MaxError())
	}
}

// TestCompressorsCrossDecode: any compressor decodes every frame kind,
// so a restore configured lossless reads lossy-era frames and vice
// versa (what the per-snapshot meta prefix relies on).
func TestCompressorsCrossDecode(t *testing.T) {
	lossless, _ := NewCompressor(Spec{Mode: CompressLossless})
	lossy, _ := NewCompressor(Spec{Mode: CompressLossy, ErrorBound: 1e-9})
	vs := testFloatSlices()["smooth"]
	for name, enc := range map[string][]byte{
		"losslessFrame": lossless.AppendFloat64s(nil, vs),
		"lossyFrame":    lossy.AppendFloat64s(nil, vs),
	} {
		for dname, dec := range map[string]Compressor{"lossless": lossless, "lossy": lossy} {
			got, _, err := dec.Float64sInto(nil, enc)
			if err != nil {
				t.Fatalf("%s via %s: %v", name, dname, err)
			}
			for i := range vs {
				if math.Abs(got[i]-vs[i]) > 1e-9 {
					t.Fatalf("%s via %s: element %d off by %g", name, dname, i, got[i]-vs[i])
				}
			}
		}
	}
}

// TestCorruptFrameRejection: structural corruption — truncations, bad
// tags, impossible counts, mangled deflate streams — must surface as an
// error, never a panic or a silently wrong slice length.
func TestCorruptFrameRejection(t *testing.T) {
	comp, _ := NewCompressor(Spec{Mode: CompressLossless})
	lossy, _ := NewCompressor(Spec{Mode: CompressLossy, ErrorBound: 1e-6})
	smooth := testFloatSlices()["smooth"]
	frames := map[string][]byte{
		"raw":       comp.AppendFloat64s(nil, testFloatSlices()["tinyRaw"]),
		"shuffled":  comp.AppendFloat64s(nil, smooth),
		"quantized": lossy.AppendFloat64s(nil, smooth),
		"ints":      comp.AppendInts(nil, testIntSlices()["sorted"]),
	}
	decode := func(name string, b []byte) error {
		if name == "ints" {
			_, _, err := comp.IntsInto(nil, b)
			return err
		}
		_, _, err := comp.Float64sInto(nil, b)
		return err
	}
	for name, frame := range frames {
		// Sanity: the pristine frame decodes.
		if err := decode(name, frame); err != nil {
			t.Fatalf("%s: pristine frame failed: %v", name, err)
		}
		// Every truncation of the frame must error (the count header
		// promises more payload than remains).
		for cut := 0; cut < len(frame); cut += 1 + len(frame)/13 {
			if err := decode(name, frame[:cut]); err == nil {
				t.Errorf("%s: truncation to %d bytes decoded without error", name, cut)
			}
		}
	}
	// Targeted structural breaks on float frames.
	bad := [][]byte{
		{0x05, 0xAB}, // count 5, unknown tag
		{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01}, // implausible count
	}
	// Quantized frame advertising a non-positive error bound.
	q := lossy.AppendFloat64s(nil, []float64{0.125, 0.25})
	if len(q) > 10 && q[1] == floatQuantized {
		z := append([]byte(nil), q...)
		for i := 2; i < 10; i++ {
			z[i] = 0 // eps = +0
		}
		bad = append(bad, z)
	}
	// Shuffled frame with its deflate stream scribbled over.
	sh := append([]byte(nil), frames["shuffled"]...)
	if sh[1+binary_len(uint64(len(smooth)))] == floatShuffled {
		for i := len(sh) - 20; i < len(sh); i++ {
			sh[i] ^= 0x5A
		}
		bad = append(bad, sh)
	}
	for i, b := range bad {
		if _, _, err := comp.Float64sInto(nil, b); err == nil {
			t.Errorf("corrupt frame %d decoded without error", i)
		}
	}
}

// binary_len is the uvarint length of v (test helper).
func binary_len(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// TestEncoderCRCOverCompressedBytes: with a compressor attached, the
// Encoder's rolling CRC-32C covers exactly the emitted (compressed)
// bytes — the property replica validation and erasure repair depend on.
func TestEncoderCRCOverCompressedBytes(t *testing.T) {
	comp, _ := NewCompressor(Spec{Mode: CompressLossless})
	vs := testFloatSlices()["smooth"]
	enc := NewEncoderC(SizeFloat64s(len(vs))+SizeInt, comp)
	enc.PutInt(len(vs))
	enc.PutFloat64s(vs)
	if got, want := enc.Sum(), Checksum(enc.Bytes()); got != want {
		t.Fatalf("rolling CRC %#x != checksum of emitted bytes %#x", got, want)
	}
	// And the emitted stream must actually be the compressed form.
	if enc.Len() >= SizeInt+SizeFloat64s(len(vs)) {
		t.Fatalf("encoder emitted %d bytes, raw is %d — compressor not engaged", enc.Len(), SizeInt+SizeFloat64s(len(vs)))
	}
}

// TestParseCompressionAndSpec covers the flag parser and Spec validation
// table driven.
func TestParseCompressionAndSpec(t *testing.T) {
	for s, want := range map[string]Compression{"": CompressNone, "none": CompressNone, "lossless": CompressLossless, "lossy": CompressLossy} {
		got, err := ParseCompression(s)
		if err != nil || got != want {
			t.Errorf("ParseCompression(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseCompression("zstd"); err == nil {
		t.Error("ParseCompression accepted unknown mode")
	}
	valid := []Spec{{}, {Mode: CompressLossless}, {Mode: CompressLossy, ErrorBound: 1e-9}}
	for _, s := range valid {
		if err := s.Validate(); err != nil {
			t.Errorf("Validate(%v) = %v", s, err)
		}
	}
	invalid := []Spec{
		{Mode: CompressLossy},                          // missing bound
		{Mode: CompressLossy, ErrorBound: -1},          // negative
		{Mode: CompressLossy, ErrorBound: math.Inf(1)}, // infinite
		{Mode: CompressLossy, ErrorBound: math.NaN()},  // NaN
		{Mode: CompressLossless, ErrorBound: 1e-9},     // bound without lossy
		{Mode: Compression(99)},                        // unknown mode
	}
	for _, s := range invalid {
		if err := s.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted invalid spec", s)
		}
	}
	if got := (Spec{Mode: CompressLossy, ErrorBound: 1e-6}).String(); got != "lossy(eps=1e-06)" {
		t.Errorf("lossy Spec.String() = %q", got)
	}
	if !(Spec{}).IsZero() || (Spec{Mode: CompressLossless}).IsZero() {
		t.Error("IsZero wrong")
	}
	// NewCompressor: nil for none, error for invalid.
	if c, err := NewCompressor(Spec{}); c != nil || err != nil {
		t.Errorf("NewCompressor(none) = %v, %v", c, err)
	}
	if _, err := NewCompressor(Spec{Mode: CompressLossy}); err == nil {
		t.Error("NewCompressor accepted lossy spec without bound")
	}
}

// FuzzCompressFloat64s feeds arbitrary bytes to the compressed float
// decoder: it must never panic, and whatever it successfully decodes
// must re-encode to a frame that decodes to the same bit pattern.
func FuzzCompressFloat64s(f *testing.F) {
	comp, _ := NewCompressor(Spec{Mode: CompressLossless})
	lossy, _ := NewCompressor(Spec{Mode: CompressLossy, ErrorBound: 1e-6})
	for _, vs := range testFloatSlices() {
		f.Add(comp.AppendFloat64s(nil, vs))
		f.Add(lossy.AppendFloat64s(nil, vs))
	}
	f.Add([]byte{0x03, floatQuantized})
	f.Add([]byte{0x03, floatShuffled, 0x01})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0x7F, floatRaw})
	f.Fuzz(func(t *testing.T, data []byte) {
		vs, rest, err := comp.Float64sInto(nil, data)
		if err != nil {
			return
		}
		consumed := len(data) - len(rest)
		re := comp.AppendFloat64s(nil, vs)
		got, rest2, err := comp.Float64sInto(nil, re)
		if err != nil || len(rest2) != 0 {
			t.Fatalf("re-encode of decoded frame (consumed %d) failed: %v", consumed, err)
		}
		for i := range vs {
			if math.Float64bits(got[i]) != math.Float64bits(vs[i]) {
				t.Fatalf("re-encode changed element %d: %v -> %v", i, vs[i], got[i])
			}
		}
	})
}

// FuzzCompressInts is the int-frame analogue; the varint codec is
// canonical-per-value-set, so here the re-encode must reproduce the
// consumed bytes exactly.
func FuzzCompressInts(f *testing.F) {
	comp, _ := NewCompressor(Spec{Mode: CompressLossless})
	for _, vs := range testIntSlices() {
		f.Add(comp.AppendInts(nil, vs))
	}
	f.Add([]byte{0xFF, 0xFF, 0x7F})
	f.Fuzz(func(t *testing.T, data []byte) {
		vs, rest, err := comp.IntsInto(nil, data)
		if err != nil {
			return
		}
		consumed := len(data) - len(rest)
		// Overlong (non-minimal) varints decode but do not re-encode
		// identically; values do.
		got, rest2, err := comp.IntsInto(nil, comp.AppendInts(nil, vs))
		if err != nil || len(rest2) != 0 {
			t.Fatalf("re-encode of decoded frame (consumed %d) failed: %v", consumed, err)
		}
		for i := range vs {
			if got[i] != vs[i] {
				t.Fatalf("re-encode changed element %d: %d -> %d", i, vs[i], got[i])
			}
		}
	})
}

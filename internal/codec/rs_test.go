package codec

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// randPayload returns n deterministic pseudo-random bytes.
func randPayload(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	b := make([]byte, n)
	rng.Read(b)
	return b
}

func TestGFFieldAxioms(t *testing.T) {
	for a := 1; a < 256; a++ {
		if got := gfMul(byte(a), gfInv(byte(a))); got != 1 {
			t.Fatalf("a * a^-1 = %d for a=%d, want 1", got, a)
		}
	}
	// Spot-check associativity and distributivity on a pseudo-random sweep.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		a, b, c := byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))
		if gfMul(gfMul(a, b), c) != gfMul(a, gfMul(b, c)) {
			t.Fatalf("associativity broken at %d,%d,%d", a, b, c)
		}
		if gfMul(a, b^c) != gfMul(a, b)^gfMul(a, c) {
			t.Fatalf("distributivity broken at %d,%d,%d", a, b, c)
		}
	}
}

func TestRSRoundTripAllErasurePatterns(t *testing.T) {
	for _, geom := range []struct{ d, p int }{{1, 1}, {2, 1}, {2, 2}, {4, 1}, {4, 2}, {5, 3}} {
		for _, n := range []int{0, 1, 7, 64, 1000, 4096} {
			payload := randPayload(n, int64(n+geom.d*100+geom.p))
			shards, err := RSEncode(payload, geom.d, geom.p)
			if err != nil {
				t.Fatalf("encode d=%d p=%d n=%d: %v", geom.d, geom.p, n, err)
			}
			// Erase every subset of up to p shards (geometries are small
			// enough to enumerate exhaustively via bitmasks).
			total := geom.d + geom.p
			for mask := 0; mask < 1<<total; mask++ {
				erased := 0
				for i := 0; i < total; i++ {
					if mask&(1<<i) != 0 {
						erased++
					}
				}
				if erased == 0 || erased > geom.p {
					continue
				}
				work := make([][]byte, total)
				for i := range work {
					if mask&(1<<i) != 0 {
						continue
					}
					work[i] = append([]byte(nil), shards[i]...)
				}
				if err := RSReconstruct(work, geom.d, geom.p); err != nil {
					t.Fatalf("reconstruct d=%d p=%d n=%d mask=%b: %v", geom.d, geom.p, n, mask, err)
				}
				for i := range work {
					if !bytes.Equal(work[i], shards[i]) {
						t.Fatalf("shard %d differs after reconstruct (d=%d p=%d n=%d mask=%b)", i, geom.d, geom.p, n, mask)
					}
				}
				got := RSJoin(make([]byte, n), work, geom.d, n)
				if !bytes.Equal(got, payload) {
					t.Fatalf("payload differs after reconstruct (d=%d p=%d n=%d mask=%b)", geom.d, geom.p, n, mask)
				}
			}
		}
	}
}

func TestRSTooManyErasures(t *testing.T) {
	payload := randPayload(500, 3)
	shards, err := RSEncode(payload, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	shards[0], shards[2], shards[5] = nil, nil, nil
	if err := RSReconstruct(shards, 4, 2); err == nil {
		t.Fatal("reconstruct with d-1 shards should fail")
	}
}

func TestRSBadGeometry(t *testing.T) {
	if _, err := RSEncode(nil, 0, 1); err == nil {
		t.Fatal("d=0 accepted")
	}
	if _, err := RSEncode(nil, 200, 100); err == nil {
		t.Fatal("d+p>255 accepted")
	}
	if err := RSReconstruct(make([][]byte, 3), 4, 2); err == nil {
		t.Fatal("wrong shard count accepted")
	}
}

func TestRSPerShardChecksumDetectsCorruption(t *testing.T) {
	// The store pairs every shard with its own CRC; verify the CRCs of
	// distinct shards differ from each other and flip under corruption, so
	// a corrupted shard is excluded and counts as an erasure.
	payload := randPayload(2048, 11)
	shards, err := RSEncode(payload, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	sums := make([]uint32, len(shards))
	for i, s := range shards {
		sums[i] = Checksum(s)
	}
	shards[1][5] ^= 0xff
	if Checksum(shards[1]) == sums[1] {
		t.Fatal("corruption not reflected in shard checksum")
	}
}

func TestRSJoinFastPath(t *testing.T) {
	payload := randPayload(777, 21)
	shards, err := RSEncode(payload, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	got := RSJoin(make([]byte, len(payload)), shards[:4], 4, len(payload))
	if !bytes.Equal(got, payload) {
		t.Fatal("data-shard concatenation does not reproduce the payload")
	}
}

func TestRSStorageOverhead(t *testing.T) {
	// The acceptance bound: erasure storage <= (d+p)/d * payload * (1+eps),
	// where eps covers the ceil-division padding of the last shard.
	n := 10000
	d, p := 4, 2
	shards, err := RSEncode(randPayload(n, 5), d, p)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range shards {
		total += len(s)
	}
	bound := float64(n) * float64(d+p) / float64(d) * 1.01
	if float64(total) > bound {
		t.Fatalf("stored %d bytes for %d payload, exceeds (d+p)/d bound %.0f", total, n, bound)
	}
}

func BenchmarkRSEncode(b *testing.B) {
	for _, geom := range []struct{ d, p int }{{2, 1}, {4, 2}} {
		payload := randPayload(1<<20, 9)
		b.Run(fmt.Sprintf("d%d_p%d", geom.d, geom.p), func(b *testing.B) {
			b.SetBytes(int64(len(payload)))
			for i := 0; i < b.N; i++ {
				shards, err := RSEncode(payload, geom.d, geom.p)
				if err != nil {
					b.Fatal(err)
				}
				for _, s := range shards {
					PutBuffer(s)
				}
			}
		})
	}
}

func BenchmarkRSReconstruct(b *testing.B) {
	for _, geom := range []struct{ d, p int }{{4, 2}} {
		payload := randPayload(1<<20, 9)
		shards, err := RSEncode(payload, geom.d, geom.p)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("d%d_p%d", geom.d, geom.p), func(b *testing.B) {
			b.SetBytes(int64(len(payload)))
			for i := 0; i < b.N; i++ {
				work := make([][]byte, len(shards))
				copy(work, shards)
				work[0], work[4] = nil, nil
				if err := RSReconstruct(work, geom.d, geom.p); err != nil {
					b.Fatal(err)
				}
				PutBuffer(work[0])
				PutBuffer(work[4])
			}
		})
	}
}

package codec

import "hash/crc32"

// castagnoli is the CRC-32C polynomial table used for snapshot integrity
// checksums (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum returns the CRC-32C of data in one pass, for callers that
// receive a pre-built buffer (snapshot verification at load time).
func Checksum(data []byte) uint32 {
	return crc32.Checksum(data, castagnoli)
}

// Encoder accumulates an encoded payload while folding the CRC-32C of the
// emitted bytes into the same pass: each Put* appends to the buffer and
// immediately extends the running checksum over the new bytes while they
// are still cache-hot, so no separate full-buffer hashing pass is needed
// at save time. The zero value is ready to use with a nil buffer;
// NewEncoder draws a pre-sized buffer from the pool so that steady-state
// checkpoints are allocation-free.
type Encoder struct {
	buf  []byte
	sum  uint32
	comp Compressor
}

// NewEncoder returns an Encoder whose buffer comes from the pool with at
// least sizeHint capacity. Pair with snapshot.SaveEncoded (which takes
// ownership and recycles the buffer on Destroy) or with PutBuffer.
func NewEncoder(sizeHint int) Encoder {
	return Encoder{buf: GetBuffer(sizeHint)}
}

// NewEncoderC is NewEncoder with a compression stage: the bulk slice
// frames (PutFloat64s, PutInts) route through comp, and the running
// CRC-32C covers the compressed bytes. A nil comp is exactly NewEncoder.
// sizeHint is the legacy fixed-width payload size; the buffer is sized for
// the compressor's worst case so incompressible payloads do not regrow it.
func NewEncoderC(sizeHint int, comp Compressor) Encoder {
	if comp != nil {
		sizeHint = comp.SizeBound(sizeHint)
	}
	return Encoder{buf: GetBuffer(sizeHint), comp: comp}
}

// WrapEncoder returns an Encoder that appends to the caller's buffer
// (which is not pool-managed).
func WrapEncoder(buf []byte) Encoder {
	return Encoder{buf: buf}
}

// Bytes returns the encoded payload.
func (e *Encoder) Bytes() []byte { return e.buf }

// Sum returns the CRC-32C of everything emitted so far.
func (e *Encoder) Sum() uint32 { return e.sum }

// Len returns the number of bytes emitted so far.
func (e *Encoder) Len() int { return len(e.buf) }

// update extends the running checksum over bytes appended past off.
func (e *Encoder) update(off int) {
	e.sum = crc32.Update(e.sum, castagnoli, e.buf[off:])
}

// PutUint64 emits v in little-endian order.
func (e *Encoder) PutUint64(v uint64) {
	off := len(e.buf)
	e.buf = AppendUint64(e.buf, v)
	e.update(off)
}

// PutInt emits an int as a uint64.
func (e *Encoder) PutInt(v int) {
	e.PutUint64(uint64(int64(v)))
}

// PutFloat64 emits the IEEE-754 bits of v.
func (e *Encoder) PutFloat64(v float64) {
	off := len(e.buf)
	e.buf = AppendFloat64(e.buf, v)
	e.update(off)
}

// PutFloat64s emits a length-prefixed float slice through the bulk path,
// compressed when the Encoder carries a Compressor.
func (e *Encoder) PutFloat64s(vs []float64) {
	off := len(e.buf)
	e.buf = AppendFloat64sC(e.comp, e.buf, vs)
	e.update(off)
}

// PutInts emits a length-prefixed int slice through the bulk path,
// compressed when the Encoder carries a Compressor.
func (e *Encoder) PutInts(vs []int) {
	off := len(e.buf)
	e.buf = AppendIntsC(e.comp, e.buf, vs)
	e.update(off)
}

package codec

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
)

// referenceFloat64s is the element-wise encoding the bulk path replaced: a
// length header followed by one little-endian PutUint64 per value. The wire
// format is defined by this loop; AppendFloat64s must match it byte for
// byte on every host.
func referenceFloat64s(b []byte, vs []float64) []byte {
	b = binary.LittleEndian.AppendUint64(b, uint64(int64(len(vs))))
	for _, v := range vs {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
	}
	return b
}

func referenceInts(b []byte, vs []int) []byte {
	b = binary.LittleEndian.AppendUint64(b, uint64(int64(len(vs))))
	for _, v := range vs {
		b = binary.LittleEndian.AppendUint64(b, uint64(int64(v)))
	}
	return b
}

// floatCases covers the unroll boundaries (0..5, 7..9) and a large slice,
// with payloads exercising every special float encoding.
func floatCases() [][]float64 {
	specials := []float64{0, math.Copysign(0, -1), 1, -1, math.Pi,
		math.Inf(1), math.Inf(-1), math.NaN(), math.MaxFloat64,
		math.SmallestNonzeroFloat64, 1e-300}
	lens := []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 1000}
	cases := make([][]float64, 0, len(lens))
	for _, n := range lens {
		vs := make([]float64, n)
		for i := range vs {
			vs[i] = specials[i%len(specials)] * float64(1+i/len(specials))
		}
		cases = append(cases, vs)
	}
	return cases
}

func intCases() [][]int {
	specials := []int{0, 1, -1, math.MaxInt64, math.MinInt64, 1 << 40, -(1 << 40)}
	lens := []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 1000}
	cases := make([][]int, 0, len(lens))
	for _, n := range lens {
		vs := make([]int, n)
		for i := range vs {
			vs[i] = specials[i%len(specials)] + i
		}
		cases = append(cases, vs)
	}
	return cases
}

// TestBulkFloat64sByteIdentical pins the bulk encode path (memmove on
// little-endian hosts, unrolled loop elsewhere) to the element-wise
// reference, and checks the decoder inverts it exactly.
func TestBulkFloat64sByteIdentical(t *testing.T) {
	for _, vs := range floatCases() {
		want := referenceFloat64s(nil, vs)
		got := AppendFloat64s(nil, vs)
		if !bytes.Equal(got, want) {
			t.Fatalf("len=%d: bulk encoding differs from element-wise reference", len(vs))
		}
		// Appending after existing bytes must not disturb the prefix.
		prefix := []byte{0xde, 0xad}
		got2 := AppendFloat64s(append([]byte(nil), prefix...), vs)
		if !bytes.Equal(got2, append(append([]byte(nil), prefix...), want...)) {
			t.Fatalf("len=%d: bulk encoding with prefix differs", len(vs))
		}
		dec, rest, err := Float64s(got)
		if err != nil {
			t.Fatalf("len=%d: decode: %v", len(vs), err)
		}
		if len(rest) != 0 || len(dec) != len(vs) {
			t.Fatalf("len=%d: decode consumed wrong amount", len(vs))
		}
		for i := range vs {
			if math.Float64bits(dec[i]) != math.Float64bits(vs[i]) {
				t.Fatalf("len=%d: value %d: got %x want %x", len(vs), i,
					math.Float64bits(dec[i]), math.Float64bits(vs[i]))
			}
		}
	}
}

func TestBulkIntsByteIdentical(t *testing.T) {
	for _, vs := range intCases() {
		want := referenceInts(nil, vs)
		got := AppendInts(nil, vs)
		if !bytes.Equal(got, want) {
			t.Fatalf("len=%d: bulk encoding differs from element-wise reference", len(vs))
		}
		dec, rest, err := Ints(got)
		if err != nil {
			t.Fatalf("len=%d: decode: %v", len(vs), err)
		}
		if len(rest) != 0 {
			t.Fatalf("len=%d: decode left %d bytes", len(vs), len(rest))
		}
		for i := range vs {
			if dec[i] != vs[i] {
				t.Fatalf("len=%d: value %d: got %d want %d", len(vs), i, dec[i], vs[i])
			}
		}
	}
}

// TestEncoderMatchesAppend pins the Encoder (which folds CRC-32C into the
// encode pass) to the Append* functions: same bytes, and a running sum
// equal to a one-shot checksum of the final buffer.
func TestEncoderMatchesAppend(t *testing.T) {
	for _, vs := range floatCases() {
		var e Encoder
		e.PutInt(42)
		e.PutFloat64s(vs)
		e.PutInts([]int{7, -7})
		e.PutUint64(99)
		e.PutFloat64(math.Pi)

		want := AppendInt(nil, 42)
		want = AppendFloat64s(want, vs)
		want = AppendInts(want, []int{7, -7})
		want = AppendUint64(want, 99)
		want = AppendFloat64(want, math.Pi)

		if !bytes.Equal(e.Bytes(), want) {
			t.Fatalf("len=%d: Encoder bytes differ from Append* bytes", len(vs))
		}
		if e.Len() != len(want) {
			t.Fatalf("len=%d: Encoder.Len()=%d want %d", len(vs), e.Len(), len(want))
		}
		if e.Sum() != Checksum(want) {
			t.Fatalf("len=%d: incremental CRC %#x != one-shot CRC %#x",
				len(vs), e.Sum(), Checksum(want))
		}
	}
}

package codec

import (
	"math/bits"
	"sync"
	"sync/atomic"
	"unsafe"
)

// The checkpoint buffer pool. Snapshot payload buffers cycle through it:
// NewEncoder draws one, the snapshot store owns it while the checkpoint is
// live, and Snapshot.Destroy returns it when the next checkpoint commits
// (coordinated checkpointing keeps exactly one committed checkpoint plus
// at most one under construction, so a steady-state application touches a
// bounded working set of buffers and re-checkpoints allocation-free).
//
// Buffers are size-bucketed by power-of-two capacity so a Get never
// returns a too-small buffer and a freed buffer is always reusable by the
// same block geometry. The pool stores raw pointers: with the capacity
// implied by the bucket, Put/Get do not allocate slice headers.
const (
	minPoolClass = 6  // 64 B — below this, allocation is cheaper than pooling
	maxPoolClass = 26 // 64 MiB — beyond this, let the GC reclaim promptly
)

var bufPools [maxPoolClass + 1]sync.Pool

// Pool telemetry, for the reuse tests and benchmark reports.
var poolGets, poolHits, poolPuts atomic.Uint64

// poolClass returns the bucket whose buffers have capacity >= size, or -1
// if the size is outside the pooled range.
func poolClass(size int) int {
	if size < 0 {
		return -1
	}
	c := bits.Len(uint(max(size, 1) - 1))
	if c < minPoolClass {
		c = minPoolClass
	}
	if c > maxPoolClass {
		return -1
	}
	return c
}

// GetBuffer returns a zero-length buffer with capacity >= size, reusing a
// pooled buffer when one is available.
func GetBuffer(size int) []byte {
	poolGets.Add(1)
	c := poolClass(size)
	if c < 0 {
		return make([]byte, 0, size)
	}
	if p, _ := bufPools[c].Get().(unsafe.Pointer); p != nil {
		poolHits.Add(1)
		return unsafe.Slice((*byte)(p), 1<<c)[:0]
	}
	return make([]byte, 0, 1<<c)
}

// PutBuffer returns a buffer obtained from GetBuffer to its bucket. Buffers
// whose capacity is not an exact bucket size (grown past the hint, or not
// pool-born) are dropped for the GC rather than misfiled.
func PutBuffer(b []byte) {
	c := cap(b)
	if c == 0 || c&(c-1) != 0 {
		return
	}
	class := bits.Len(uint(c)) - 1
	if class < minPoolClass || class > maxPoolClass {
		return
	}
	poolPuts.Add(1)
	bufPools[class].Put(unsafe.Pointer(unsafe.SliceData(b[:1])))
}

// PoolStats reports the buffer pool's cumulative gets, pool hits, and puts.
func PoolStats() (gets, hits, puts uint64) {
	return poolGets.Load(), poolHits.Load(), poolPuts.Load()
}

package codec

import (
	"fmt"
	"testing"
)

// benchN is the payload length used by the codec benchmarks: 64k words
// (512 KiB) approximates one 256x256 dense block column set and is large
// enough that per-call overhead vanishes behind the copy loop.
const benchN = 1 << 16

func benchFloats() []float64 {
	vs := make([]float64, benchN)
	for i := range vs {
		vs[i] = float64(i) * 1.5
	}
	return vs
}

func benchInts() []int {
	vs := make([]int, benchN)
	for i := range vs {
		vs[i] = i * 3
	}
	return vs
}

func BenchmarkCodecEncode(b *testing.B) {
	fs := benchFloats()
	is := benchInts()
	b.Run(fmt.Sprintf("float64s-%d", benchN), func(b *testing.B) {
		buf := make([]byte, 0, 8+8*benchN)
		b.SetBytes(8 * benchN)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf = AppendFloat64s(buf[:0], fs)
		}
	})
	b.Run(fmt.Sprintf("ints-%d", benchN), func(b *testing.B) {
		buf := make([]byte, 0, 8+8*benchN)
		b.SetBytes(8 * benchN)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf = AppendInts(buf[:0], is)
		}
	})
}

func BenchmarkCodecDecode(b *testing.B) {
	encF := AppendFloat64s(nil, benchFloats())
	encI := AppendInts(nil, benchInts())
	b.Run(fmt.Sprintf("float64s-%d", benchN), func(b *testing.B) {
		b.SetBytes(8 * benchN)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := Float64s(encF); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run(fmt.Sprintf("ints-%d", benchN), func(b *testing.B) {
		b.SetBytes(8 * benchN)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := Ints(encI); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Package codec provides the compact little-endian binary encoding used to
// serialize matrix and vector fragments into snapshot storage. Checkpoint
// cost in the paper is dominated by copying real data to the local and
// backup stores; serializing to bytes here keeps that cost physical in the
// emulation instead of a pointer swap.
//
// Slice payloads move through bulk word-wise paths: on little-endian hosts
// (where the wire format equals the in-memory representation) a single
// memmove copies the whole payload, elsewhere an unrolled
// binary.LittleEndian loop produces byte-identical output. The Encoder
// folds CRC-32C computation into the encode pass, and the buffer pool
// (GetBuffer/PutBuffer) recycles checkpoint buffers across the
// double-buffered snapshot cycle so steady-state checkpoints allocate
// nothing for payloads.
package codec

import (
	"encoding/binary"
	"errors"
	"math"
	"unsafe"
)

// ErrShortBuffer is returned when a decode runs past the end of its input.
var ErrShortBuffer = errors.New("codec: short buffer")

// hostLittleEndian gates the memmove fast path: when the host memory
// layout already matches the little-endian wire format, slice payloads are
// copied wholesale instead of word by word. int must also be 64-bit for
// the []int fast path, matching the fixed 8-byte wire width.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

const intIs64 = unsafe.Sizeof(int(0)) == 8

// grow extends b by n bytes and returns the extended slice. The new bytes
// are uninitialized; callers overwrite all of them.
func grow(b []byte, n int) []byte {
	if len(b)+n <= cap(b) {
		return b[:len(b)+n]
	}
	nb := make([]byte, len(b)+n, (len(b)+n)*3/2+64)
	copy(nb, b)
	return nb
}

// SizeInt is the encoded size of one int (or uint64 or float64).
const SizeInt = 8

// SizeFloat64s returns the encoded size of a length-n float slice.
func SizeFloat64s(n int) int { return SizeInt + 8*n }

// SizeInts returns the encoded size of a length-n int slice.
func SizeInts(n int) int { return SizeInt + 8*n }

// AppendUint64 appends v in little-endian order.
func AppendUint64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

// AppendInt appends an int as a uint64.
func AppendInt(b []byte, v int) []byte {
	return AppendUint64(b, uint64(int64(v)))
}

// AppendFloat64 appends the IEEE-754 bits of v.
func AppendFloat64(b []byte, v float64) []byte {
	return AppendUint64(b, math.Float64bits(v))
}

// AppendFloat64s appends a length header followed by the raw values,
// bulk-copied word-wise.
func AppendFloat64s(b []byte, vs []float64) []byte {
	b = AppendInt(b, len(vs))
	if len(vs) == 0 {
		return b
	}
	off := len(b)
	b = grow(b, 8*len(vs))
	dst := b[off:]
	if hostLittleEndian {
		copy(dst, unsafe.Slice((*byte)(unsafe.Pointer(&vs[0])), 8*len(vs)))
		return b
	}
	i := 0
	for ; i+4 <= len(vs); i += 4 {
		binary.LittleEndian.PutUint64(dst[8*i:], math.Float64bits(vs[i]))
		binary.LittleEndian.PutUint64(dst[8*i+8:], math.Float64bits(vs[i+1]))
		binary.LittleEndian.PutUint64(dst[8*i+16:], math.Float64bits(vs[i+2]))
		binary.LittleEndian.PutUint64(dst[8*i+24:], math.Float64bits(vs[i+3]))
	}
	for ; i < len(vs); i++ {
		binary.LittleEndian.PutUint64(dst[8*i:], math.Float64bits(vs[i]))
	}
	return b
}

// AppendInts appends a length header followed by the values, bulk-copied
// word-wise.
func AppendInts(b []byte, vs []int) []byte {
	b = AppendInt(b, len(vs))
	if len(vs) == 0 {
		return b
	}
	off := len(b)
	b = grow(b, 8*len(vs))
	dst := b[off:]
	if hostLittleEndian && intIs64 {
		copy(dst, unsafe.Slice((*byte)(unsafe.Pointer(&vs[0])), 8*len(vs)))
		return b
	}
	i := 0
	for ; i+4 <= len(vs); i += 4 {
		binary.LittleEndian.PutUint64(dst[8*i:], uint64(int64(vs[i])))
		binary.LittleEndian.PutUint64(dst[8*i+8:], uint64(int64(vs[i+1])))
		binary.LittleEndian.PutUint64(dst[8*i+16:], uint64(int64(vs[i+2])))
		binary.LittleEndian.PutUint64(dst[8*i+24:], uint64(int64(vs[i+3])))
	}
	for ; i < len(vs); i++ {
		binary.LittleEndian.PutUint64(dst[8*i:], uint64(int64(vs[i])))
	}
	return b
}

// Uint64 decodes a uint64, returning the remaining input.
func Uint64(b []byte) (uint64, []byte, error) {
	if len(b) < 8 {
		return 0, nil, ErrShortBuffer
	}
	return binary.LittleEndian.Uint64(b), b[8:], nil
}

// Int decodes an int, returning the remaining input.
func Int(b []byte) (int, []byte, error) {
	v, rest, err := Uint64(b)
	return int(int64(v)), rest, err
}

// Float64 decodes a float64, returning the remaining input.
func Float64(b []byte) (float64, []byte, error) {
	v, rest, err := Uint64(b)
	return math.Float64frombits(v), rest, err
}

// Float64s decodes a length-prefixed float slice via the bulk path.
func Float64s(b []byte) ([]float64, []byte, error) {
	return Float64sInto(nil, b)
}

// Float64sInto is Float64s decoding into dst's backing storage when its
// capacity suffices, so restores that overwrite an existing allocation
// (same-grid block restore, segment restore) stay allocation-free. The
// returned slice aliases dst only in that case; its length is always the
// decoded element count.
func Float64sInto(dst []float64, b []byte) ([]float64, []byte, error) {
	n, b, err := Int(b)
	if err != nil {
		return nil, nil, err
	}
	if n < 0 || n > len(b)/8 {
		return nil, nil, ErrShortBuffer
	}
	var vs []float64
	if cap(dst) >= n {
		vs = dst[:n]
	} else {
		vs = make([]float64, n)
	}
	if n == 0 {
		return vs, b, nil
	}
	src := b[:8*n]
	if hostLittleEndian {
		copy(unsafe.Slice((*byte)(unsafe.Pointer(&vs[0])), 8*n), src)
		return vs, b[8*n:], nil
	}
	i := 0
	for ; i+4 <= n; i += 4 {
		vs[i] = math.Float64frombits(binary.LittleEndian.Uint64(src[8*i:]))
		vs[i+1] = math.Float64frombits(binary.LittleEndian.Uint64(src[8*i+8:]))
		vs[i+2] = math.Float64frombits(binary.LittleEndian.Uint64(src[8*i+16:]))
		vs[i+3] = math.Float64frombits(binary.LittleEndian.Uint64(src[8*i+24:]))
	}
	for ; i < n; i++ {
		vs[i] = math.Float64frombits(binary.LittleEndian.Uint64(src[8*i:]))
	}
	return vs, b[8*n:], nil
}

// Ints decodes a length-prefixed int slice via the bulk path.
func Ints(b []byte) ([]int, []byte, error) {
	return IntsInto(nil, b)
}

// IntsInto is Ints decoding into dst's backing storage when its capacity
// suffices (see Float64sInto).
func IntsInto(dst []int, b []byte) ([]int, []byte, error) {
	n, b, err := Int(b)
	if err != nil {
		return nil, nil, err
	}
	if n < 0 || n > len(b)/8 {
		return nil, nil, ErrShortBuffer
	}
	var vs []int
	if cap(dst) >= n {
		vs = dst[:n]
	} else {
		vs = make([]int, n)
	}
	if n == 0 {
		return vs, b, nil
	}
	src := b[:8*n]
	if hostLittleEndian && intIs64 {
		copy(unsafe.Slice((*byte)(unsafe.Pointer(&vs[0])), 8*n), src)
		return vs, b[8*n:], nil
	}
	i := 0
	for ; i+4 <= n; i += 4 {
		vs[i] = int(int64(binary.LittleEndian.Uint64(src[8*i:])))
		vs[i+1] = int(int64(binary.LittleEndian.Uint64(src[8*i+8:])))
		vs[i+2] = int(int64(binary.LittleEndian.Uint64(src[8*i+16:])))
		vs[i+3] = int(int64(binary.LittleEndian.Uint64(src[8*i+24:])))
	}
	for ; i < n; i++ {
		vs[i] = int(int64(binary.LittleEndian.Uint64(src[8*i:])))
	}
	return vs, b[8*n:], nil
}

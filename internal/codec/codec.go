// Package codec provides the compact little-endian binary encoding used to
// serialize matrix and vector fragments into snapshot storage. Checkpoint
// cost in the paper is dominated by copying real data to the local and
// backup stores; serializing to bytes here keeps that cost physical in the
// emulation instead of a pointer swap.
package codec

import (
	"encoding/binary"
	"errors"
	"math"
)

// ErrShortBuffer is returned when a decode runs past the end of its input.
var ErrShortBuffer = errors.New("codec: short buffer")

// AppendUint64 appends v in little-endian order.
func AppendUint64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

// AppendInt appends an int as a uint64.
func AppendInt(b []byte, v int) []byte {
	return AppendUint64(b, uint64(int64(v)))
}

// AppendFloat64 appends the IEEE-754 bits of v.
func AppendFloat64(b []byte, v float64) []byte {
	return AppendUint64(b, math.Float64bits(v))
}

// AppendFloat64s appends a length header followed by the raw values.
func AppendFloat64s(b []byte, vs []float64) []byte {
	b = AppendInt(b, len(vs))
	for _, v := range vs {
		b = AppendFloat64(b, v)
	}
	return b
}

// AppendInts appends a length header followed by the values.
func AppendInts(b []byte, vs []int) []byte {
	b = AppendInt(b, len(vs))
	for _, v := range vs {
		b = AppendInt(b, v)
	}
	return b
}

// Uint64 decodes a uint64, returning the remaining input.
func Uint64(b []byte) (uint64, []byte, error) {
	if len(b) < 8 {
		return 0, nil, ErrShortBuffer
	}
	return binary.LittleEndian.Uint64(b), b[8:], nil
}

// Int decodes an int, returning the remaining input.
func Int(b []byte) (int, []byte, error) {
	v, rest, err := Uint64(b)
	return int(int64(v)), rest, err
}

// Float64 decodes a float64, returning the remaining input.
func Float64(b []byte) (float64, []byte, error) {
	v, rest, err := Uint64(b)
	return math.Float64frombits(v), rest, err
}

// Float64s decodes a length-prefixed float slice.
func Float64s(b []byte) ([]float64, []byte, error) {
	n, b, err := Int(b)
	if err != nil {
		return nil, nil, err
	}
	if n < 0 || len(b) < 8*n {
		return nil, nil, ErrShortBuffer
	}
	vs := make([]float64, n)
	for i := range vs {
		vs[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return vs, b[8*n:], nil
}

// Ints decodes a length-prefixed int slice.
func Ints(b []byte) ([]int, []byte, error) {
	n, b, err := Int(b)
	if err != nil {
		return nil, nil, err
	}
	if n < 0 || len(b) < 8*n {
		return nil, nil, ErrShortBuffer
	}
	vs := make([]int, n)
	for i := range vs {
		vs[i] = int(int64(binary.LittleEndian.Uint64(b[8*i:])))
	}
	return vs, b[8*n:], nil
}

// Compression seam under the snapshot codec. A Compressor rewrites the
// bulk slice frames (float and int payloads) that dominate checkpoint
// volume; scalar headers keep the fixed-width encoding so block and
// snapshot metadata stay directly seekable. The Encoder folds the CRC-32C
// over whatever bytes are actually emitted, so with a compressor attached
// the integrity checksum covers the *compressed* frames end-to-end —
// replica placement, Reed-Solomon sharding and the NetModel byte charges
// all operate on compressed sizes with no further plumbing.
//
// Three modes:
//
//   - CompressNone: the legacy fixed-width frames, byte-identical to a
//     build without this file.
//   - CompressLossless: int slices as zigzag-varint deltas (sparse index
//     arrays are sorted and near-arithmetic, so deltas are tiny); float
//     slices byte-plane shuffled and deflated chunk by chunk (the shuffle
//     groups the high-entropy mantissa bytes apart from the highly
//     repetitive sign/exponent bytes), with a verbatim fallback whenever
//     deflate would not actually shrink a frame.
//   - CompressLossy: floats quantized to q = round(x/2ε) and delta-varint
//     encoded, guaranteeing |x − x'| ≤ ε per element (Tao et al.,
//     "Improving Performance of Iterative Methods by Lossy
//     Checkpointing"). Any element that cannot honor the bound (NaN, ±Inf,
//     |q| beyond exact-integer range, or a verification miss) falls the
//     whole frame back to the lossless path, so the bound is an invariant
//     of the wire format, not a best effort.
//
// Chunked float frames compress and decompress in parallel through
// internal/par; chunk geometry depends only on the element count, so the
// emitted bytes are deterministic at every worker count — the property the
// delta layer's content-hit comparison and the chaos campaigns' bitwise
// replay checks rely on.
package codec

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"

	"github.com/rgml/rgml/internal/par"
)

// Compression selects a checkpoint compression mode.
type Compression uint8

const (
	// CompressNone keeps the legacy fixed-width frames (the default).
	CompressNone Compression = iota
	// CompressLossless shrinks frames with exact round-trip codecs.
	CompressLossless
	// CompressLossy quantizes float frames against a per-object error
	// bound; everything else stays lossless.
	CompressLossy
)

// String implements fmt.Stringer.
func (c Compression) String() string {
	switch c {
	case CompressNone:
		return "none"
	case CompressLossless:
		return "lossless"
	case CompressLossy:
		return "lossy"
	}
	return fmt.Sprintf("Compression(%d)", uint8(c))
}

// ParseCompression maps a -compress flag value to its mode.
func ParseCompression(s string) (Compression, error) {
	switch s {
	case "", "none":
		return CompressNone, nil
	case "lossless":
		return CompressLossless, nil
	case "lossy":
		return CompressLossy, nil
	}
	return 0, fmt.Errorf("unknown compression %q (want none, lossless or lossy)", s)
}

// Spec is a complete, comparable compression configuration: the mode plus
// the lossy error bound. The zero value means no compression.
type Spec struct {
	Mode Compression
	// ErrorBound is the per-element absolute error ε the lossy codec
	// guarantees. It must be positive and finite for CompressLossy and
	// zero otherwise (so equal configurations compare equal).
	ErrorBound float64
}

// IsZero reports whether s is the no-compression default.
func (s Spec) IsZero() bool { return s == Spec{} }

// Validate checks the mode/bound combination.
func (s Spec) Validate() error {
	switch s.Mode {
	case CompressNone, CompressLossless:
		if s.ErrorBound != 0 {
			return fmt.Errorf("codec: error bound %g applies to lossy compression only", s.ErrorBound)
		}
		return nil
	case CompressLossy:
		if !(s.ErrorBound > 0) || math.IsInf(s.ErrorBound, 0) {
			return fmt.Errorf("codec: lossy compression needs a positive finite error bound, got %g", s.ErrorBound)
		}
		return nil
	}
	return fmt.Errorf("codec: unknown compression mode %d", s.Mode)
}

// String implements fmt.Stringer.
func (s Spec) String() string {
	if s.Mode == CompressLossy {
		return fmt.Sprintf("lossy(eps=%g)", s.ErrorBound)
	}
	return s.Mode.String()
}

// Compressor rewrites the bulk slice frames of the snapshot codec. The
// Append methods emit a self-describing frame; the Into methods decode one
// (any Compressor decodes every frame kind, so a lossy compressor reads
// frames that fell back to lossless). Implementations are safe for
// concurrent use — one Compressor serves all places of a runtime.
type Compressor interface {
	// Spec returns the configuration this compressor was built from.
	Spec() Spec
	// SizeBound returns a buffer size sufficient for any payload whose
	// legacy fixed-width encoding is rawSize bytes.
	SizeBound(rawSize int) int
	// AppendFloat64s and AppendInts append one compressed frame.
	AppendFloat64s(dst []byte, vs []float64) []byte
	AppendInts(dst []byte, vs []int) []byte
	// Float64sInto and IntsInto decode one frame into dst's backing
	// storage when its capacity suffices, returning the values and the
	// remaining input (the contract of the legacy Float64sInto/IntsInto).
	Float64sInto(dst []float64, b []byte) ([]float64, []byte, error)
	IntsInto(dst []int, b []byte) ([]int, []byte, error)
	// MaxError returns the largest per-element error introduced by any
	// frame this compressor has encoded (always 0 for lossless).
	MaxError() float64
}

// NewCompressor builds the Compressor for spec; CompressNone yields nil
// (callers treat a nil Compressor as the legacy fixed-width path).
func NewCompressor(spec Spec) (Compressor, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	switch spec.Mode {
	case CompressNone:
		return nil, nil
	case CompressLossless:
		return losslessCompressor{}, nil
	default:
		return &lossyCompressor{eps: spec.ErrorBound}, nil
	}
}

// AppendFloat64sC routes through c, or the legacy encoding when c is nil.
func AppendFloat64sC(c Compressor, dst []byte, vs []float64) []byte {
	if c == nil {
		return AppendFloat64s(dst, vs)
	}
	return c.AppendFloat64s(dst, vs)
}

// AppendIntsC routes through c, or the legacy encoding when c is nil.
func AppendIntsC(c Compressor, dst []byte, vs []int) []byte {
	if c == nil {
		return AppendInts(dst, vs)
	}
	return c.AppendInts(dst, vs)
}

// Float64sIntoC routes through c, or the legacy decoding when c is nil.
func Float64sIntoC(c Compressor, dst []float64, b []byte) ([]float64, []byte, error) {
	if c == nil {
		return Float64sInto(dst, b)
	}
	return c.Float64sInto(dst, b)
}

// IntsIntoC routes through c, or the legacy decoding when c is nil.
func IntsIntoC(c Compressor, dst []int, b []byte) ([]int, []byte, error) {
	if c == nil {
		return IntsInto(dst, b)
	}
	return c.IntsInto(dst, b)
}

// Float frame layout: [uvarint count] then, for count > 0, one tag byte
// and the tagged payload.
const (
	floatRaw       = 0 // 8·count little-endian words (deflate did not pay off)
	floatShuffled  = 1 // [uvarint nChunks][uvarint len]·nChunks, byte-shuffled deflate streams
	floatQuantized = 2 // [8-byte ε bits][zigzag-varint delta-coded quantum numbers]
)

// floatChunk is the float count per deflate chunk: big enough to amortize
// the deflate stream overhead, small enough that block payloads split into
// several chunks and compress in parallel.
const floatChunk = 32768

// flateMinFloats is the slice length below which deflate is not attempted
// (stream setup dominates any saving on tiny frames).
const flateMinFloats = 128

// maxQuant bounds |q| to the range where float64(int64(q)) is exact, so
// the reconstruction q·2ε is computed from the same quantum number the
// encoder verified.
const maxQuant = float64(1 << 51)

// errCorruptFrame reports a structurally invalid compressed frame — a
// decode that survives the CRC only because the caller skipped it.
var errCorruptFrame = errors.New("codec: corrupt compressed frame")

// losslessCompressor implements exact round-trip compression.
type losslessCompressor struct{}

func (losslessCompressor) Spec() Spec        { return Spec{Mode: CompressLossless} }
func (losslessCompressor) MaxError() float64 { return 0 }

// SizeBound: varints expand an 8-byte word to at most 10 bytes (+25%),
// and float frames never exceed raw + the chunk table; 64 covers headers.
func (losslessCompressor) SizeBound(rawSize int) int { return sizeBound(rawSize) }

func sizeBound(rawSize int) int { return rawSize + rawSize/4 + 64 }

func (losslessCompressor) AppendInts(dst []byte, vs []int) []byte {
	return appendVarints(dst, vs)
}

func (losslessCompressor) AppendFloat64s(dst []byte, vs []float64) []byte {
	return appendFloatsLossless(dst, vs)
}

func (losslessCompressor) IntsInto(dst []int, b []byte) ([]int, []byte, error) {
	return varintsInto(dst, b)
}

func (losslessCompressor) Float64sInto(dst []float64, b []byte) ([]float64, []byte, error) {
	return floatsInto(dst, b)
}

// lossyCompressor quantizes float frames against eps and delegates
// everything else (and every fallback) to the lossless codecs.
type lossyCompressor struct {
	eps float64
	// maxErr accumulates the largest reconstruction error actually
	// introduced, as monotonically increasing float bits (valid because
	// errors are non-negative, where the IEEE-754 ordering matches the
	// bit ordering).
	maxErr atomic.Uint64
}

func (c *lossyCompressor) Spec() Spec { return Spec{Mode: CompressLossy, ErrorBound: c.eps} }

func (c *lossyCompressor) SizeBound(rawSize int) int { return sizeBound(rawSize) }

func (c *lossyCompressor) MaxError() float64 {
	return math.Float64frombits(c.maxErr.Load())
}

func (c *lossyCompressor) noteErr(e float64) {
	bits := math.Float64bits(e)
	for {
		old := c.maxErr.Load()
		if old >= bits || c.maxErr.CompareAndSwap(old, bits) {
			return
		}
	}
}

func (c *lossyCompressor) AppendInts(dst []byte, vs []int) []byte {
	return appendVarints(dst, vs)
}

func (c *lossyCompressor) IntsInto(dst []int, b []byte) ([]int, []byte, error) {
	return varintsInto(dst, b)
}

func (c *lossyCompressor) Float64sInto(dst []float64, b []byte) ([]float64, []byte, error) {
	return floatsInto(dst, b)
}

// AppendFloat64s quantizes vs to multiples of 2ε, verifying the error
// bound per element against the exact value the decoder will reconstruct.
// Any element that cannot honor the bound rolls the whole frame back to
// the lossless encoding.
func (c *lossyCompressor) AppendFloat64s(dst []byte, vs []float64) []byte {
	n := len(vs)
	mark := len(dst)
	dst = binary.AppendUvarint(dst, uint64(n))
	if n == 0 {
		return dst
	}
	dst = append(dst, floatQuantized)
	twoEps := 2 * c.eps
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(c.eps))
	prev := int64(0)
	localMax := 0.0
	for _, v := range vs {
		q := math.Round(v / twoEps)
		if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(q) > maxQuant {
			return appendFloatsLossless(dst[:mark], vs)
		}
		e := math.Abs(v - q*twoEps)
		if !(e <= c.eps) {
			return appendFloatsLossless(dst[:mark], vs)
		}
		if e > localMax {
			localMax = e
		}
		qi := int64(q)
		dst = binary.AppendUvarint(dst, zigzag(qi-prev))
		prev = qi
	}
	if len(dst)-mark >= 8*n {
		// Quantization did not pay (adversarially spread values); the
		// lossless path is both smaller and exact.
		return appendFloatsLossless(dst[:mark], vs)
	}
	c.noteErr(localMax)
	return dst
}

// zigzag maps a signed delta to an unsigned varint-friendly value.
func zigzag(v int64) uint64 { return uint64((v << 1) ^ (v >> 63)) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// appendVarints emits an int slice as [uvarint count] plus zigzag-varint
// first differences — near-free for the sorted index arrays (ColPtr,
// RowIdx) of sparse blocks.
func appendVarints(dst []byte, vs []int) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(vs)))
	prev := int64(0)
	for _, v := range vs {
		dst = binary.AppendUvarint(dst, zigzag(int64(v)-prev))
		prev = int64(v)
	}
	return dst
}

// varintsInto decodes an appendVarints frame.
func varintsInto(dst []int, b []byte) ([]int, []byte, error) {
	n64, b, err := readUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	// Every value costs at least one byte, so a count beyond the input
	// length is structurally impossible.
	if n64 > uint64(len(b)) {
		return nil, nil, fmt.Errorf("%w: int count %d exceeds input", errCorruptFrame, n64)
	}
	n := int(n64)
	var vs []int
	if cap(dst) >= n {
		vs = dst[:n]
	} else {
		vs = make([]int, n)
	}
	prev := int64(0)
	for i := 0; i < n; i++ {
		var u uint64
		u, b, err = readUvarint(b)
		if err != nil {
			return nil, nil, err
		}
		prev += unzigzag(u)
		vs[i] = int(prev)
	}
	return vs, b, nil
}

// appendFloatsLossless emits a float frame: byte-plane shuffled deflate
// chunks when that shrinks the payload, verbatim words otherwise.
func appendFloatsLossless(dst []byte, vs []float64) []byte {
	n := len(vs)
	dst = binary.AppendUvarint(dst, uint64(n))
	if n == 0 {
		return dst
	}
	if n < flateMinFloats {
		return appendFloatsRaw(dst, vs)
	}
	nChunks := (n + floatChunk - 1) / floatChunk
	comp := make([][]byte, nChunks)
	par.For(nChunks, 1, func(lo, hi int) {
		for c := lo; c < hi; c++ {
			clo := c * floatChunk
			chi := min(clo+floatChunk, n)
			comp[c] = compressFloatChunk(vs[clo:chi])
		}
	})
	total := 0
	for _, cb := range comp {
		total += len(cb)
	}
	// The frame must beat the raw payload including its own chunk table.
	if total+1+binary.MaxVarintLen64*(nChunks+1) >= 8*n {
		for _, cb := range comp {
			PutBuffer(cb)
		}
		return appendFloatsRaw(dst, vs)
	}
	dst = append(dst, floatShuffled)
	dst = binary.AppendUvarint(dst, uint64(nChunks))
	for _, cb := range comp {
		dst = binary.AppendUvarint(dst, uint64(len(cb)))
	}
	for _, cb := range comp {
		dst = append(dst, cb...)
		PutBuffer(cb)
	}
	return dst
}

// appendFloatsRaw emits the verbatim little-endian words after the count.
func appendFloatsRaw(dst []byte, vs []float64) []byte {
	dst = append(dst, floatRaw)
	off := len(dst)
	dst = grow(dst, 8*len(vs))
	putRawFloats(dst[off:], vs)
	return dst
}

// putRawFloats writes vs as little-endian words into dst (len 8·len(vs)).
func putRawFloats(dst []byte, vs []float64) {
	for i, v := range vs {
		binary.LittleEndian.PutUint64(dst[8*i:], math.Float64bits(v))
	}
}

// floatsInto decodes any float frame kind.
func floatsInto(dst []float64, b []byte) ([]float64, []byte, error) {
	n64, b, err := readUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	// Deflate tops out near 1032:1, so a count whose payload could not
	// possibly fit the remaining input is corrupt — reject before
	// allocating element storage for it.
	if n64 > uint64(math.MaxInt32) || int(n64) > (len(b)+64)*130 {
		return nil, nil, fmt.Errorf("%w: implausible float count %d", errCorruptFrame, n64)
	}
	n := int(n64)
	var vs []float64
	if cap(dst) >= n {
		vs = dst[:n]
	} else {
		vs = make([]float64, n)
	}
	if n == 0 {
		return vs, b, nil
	}
	if len(b) < 1 {
		return nil, nil, ErrShortBuffer
	}
	tag := b[0]
	b = b[1:]
	switch tag {
	case floatRaw:
		if len(b) < 8*n {
			return nil, nil, ErrShortBuffer
		}
		for i := 0; i < n; i++ {
			vs[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
		}
		return vs, b[8*n:], nil
	case floatShuffled:
		rest, err := decodeShuffledFloats(vs, b)
		if err != nil {
			return nil, nil, err
		}
		return vs, rest, nil
	case floatQuantized:
		rest, err := decodeQuantizedFloats(vs, b)
		if err != nil {
			return nil, nil, err
		}
		return vs, rest, nil
	}
	return nil, nil, fmt.Errorf("%w: unknown float frame tag %d", errCorruptFrame, tag)
}

// decodeShuffledFloats fills vs from a floatShuffled payload, returning
// the remaining input. Chunks decompress in parallel; the chunk geometry
// is recomputed from the count and must match the wire's chunk table.
func decodeShuffledFloats(vs []float64, b []byte) ([]byte, error) {
	n := len(vs)
	nc64, b, err := readUvarint(b)
	if err != nil {
		return nil, err
	}
	wantChunks := (n + floatChunk - 1) / floatChunk
	if nc64 != uint64(wantChunks) {
		return nil, fmt.Errorf("%w: chunk count %d for %d floats", errCorruptFrame, nc64, n)
	}
	lens := make([]int, wantChunks)
	total := 0
	for i := range lens {
		var l uint64
		l, b, err = readUvarint(b)
		if err != nil {
			return nil, err
		}
		if l > uint64(len(b)) || total > len(b)-int(l) {
			return nil, fmt.Errorf("%w: chunk length overruns input", errCorruptFrame)
		}
		lens[i] = int(l)
		total += int(l)
	}
	offs := make([]int, wantChunks)
	off := 0
	for i, l := range lens {
		offs[i] = off
		off += l
	}
	errsByChunk := make([]error, wantChunks)
	par.For(wantChunks, 1, func(lo, hi int) {
		for c := lo; c < hi; c++ {
			clo := c * floatChunk
			chi := min(clo+floatChunk, n)
			errsByChunk[c] = decompressFloatChunk(vs[clo:chi], b[offs[c]:offs[c]+lens[c]])
		}
	})
	if err := errors.Join(errsByChunk...); err != nil {
		return nil, err
	}
	return b[total:], nil
}

// decodeQuantizedFloats fills vs from a floatQuantized payload.
func decodeQuantizedFloats(vs []float64, b []byte) ([]byte, error) {
	if len(b) < 8 {
		return nil, ErrShortBuffer
	}
	eps := math.Float64frombits(binary.LittleEndian.Uint64(b))
	b = b[8:]
	if !(eps > 0) || math.IsInf(eps, 0) {
		return nil, fmt.Errorf("%w: quantized frame with error bound %g", errCorruptFrame, eps)
	}
	twoEps := 2 * eps
	prev := int64(0)
	for i := range vs {
		u, rest, err := readUvarint(b)
		if err != nil {
			return nil, err
		}
		b = rest
		prev += unzigzag(u)
		vs[i] = float64(prev) * twoEps
	}
	return b, nil
}

// readUvarint consumes one uvarint, returning the remaining input.
func readUvarint(b []byte) (uint64, []byte, error) {
	v, k := binary.Uvarint(b)
	if k <= 0 {
		return 0, nil, ErrShortBuffer
	}
	return v, b[k:], nil
}

// compressFloatChunk byte-plane shuffles one chunk and deflates it into a
// pooled buffer (returned to the pool by the caller).
func compressFloatChunk(vs []float64) []byte {
	m := len(vs)
	scratch := GetBuffer(8 * m)[:8*m]
	for i, v := range vs {
		bits := math.Float64bits(v)
		for p := 0; p < 8; p++ {
			scratch[p*m+i] = byte(bits >> (8 * p))
		}
	}
	sw := &sliceWriter{buf: GetBuffer(8 * m)[:0]}
	fw := flateWriters.Get().(*flate.Writer)
	fw.Reset(sw)
	// Writes to a sliceWriter cannot fail; deflate errors would surface
	// on Close, which for an in-memory sink never errors either.
	fw.Write(scratch)
	fw.Close()
	flateWriters.Put(fw)
	PutBuffer(scratch)
	return sw.buf
}

// decompressFloatChunk inflates one chunk and unshuffles it into dst.
func decompressFloatChunk(dst []float64, data []byte) error {
	m := len(dst)
	scratch := GetBuffer(8 * m)[:8*m]
	defer PutBuffer(scratch)
	fr := flateReaders.Get().(*flateReaderState)
	fr.br.Reset(data)
	if err := fr.rd.(flate.Resetter).Reset(&fr.br, nil); err != nil {
		flateReaders.Put(fr)
		return fmt.Errorf("%w: %v", errCorruptFrame, err)
	}
	_, err := io.ReadFull(fr.rd, scratch)
	flateReaders.Put(fr)
	if err != nil {
		return fmt.Errorf("%w: %v", errCorruptFrame, err)
	}
	for i := range dst {
		var bits uint64
		for p := 0; p < 8; p++ {
			bits |= uint64(scratch[p*m+i]) << (8 * p)
		}
		dst[i] = math.Float64frombits(bits)
	}
	return nil
}

// sliceWriter is an appending io.Writer over a byte slice.
type sliceWriter struct{ buf []byte }

func (w *sliceWriter) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	return len(p), nil
}

// flateWriters pools deflate writers (each holds ~32 KiB of window state).
var flateWriters = sync.Pool{New: func() any {
	w, _ := flate.NewWriter(io.Discard, flate.BestSpeed)
	return w
}}

// flateReaderState pairs a reusable inflate reader with its input reader.
type flateReaderState struct {
	br bytes.Reader
	rd io.ReadCloser
}

var flateReaders = sync.Pool{New: func() any {
	s := &flateReaderState{}
	s.rd = flate.NewReader(&s.br)
	return s
}}

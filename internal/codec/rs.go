// Reed-Solomon erasure coding over GF(2^8) for the snapshot store's
// erasure placement policy (ReStore-style redundancy: tolerating f
// failures costs (d+f)/d storage instead of f+1 full copies).
//
// The code is systematic: a payload is split into d equal-length data
// shards (the payload bytes themselves, zero-padded) plus p parity
// shards, and any d of the d+p shards reconstruct the payload. The
// generator matrix is a Vandermonde matrix normalized so its top d rows
// are the identity; every d-row submatrix of a Vandermonde matrix over
// distinct evaluation points is invertible, and right-multiplying by one
// fixed invertible matrix preserves that, so every erasure pattern of at
// most p shards is recoverable.
//
// The field is GF(2^8) with the conventional 0x11d reduction polynomial.
// Everything is hand-rolled — the repository takes no dependencies — and
// the hot loops (parity generation, reconstruction) run on the
// deterministic internal/par engine: output ranges are disjoint per
// chunk, so shard bytes are identical at every worker count.
package codec

import (
	"fmt"

	"github.com/rgml/rgml/internal/par"
)

// gfExp/gfLog are the exponential and logarithm tables of GF(2^8) with
// generator 2 mod 0x11d. gfExp is doubled so products of two logs index
// without a modular reduction.
var (
	gfExp [510]byte
	gfLog [256]byte
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		gfExp[i] = byte(x)
		gfExp[i+255] = byte(x)
		gfLog[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= 0x11d
		}
	}
}

// gfMul multiplies in GF(2^8).
func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+int(gfLog[b])]
}

// gfInv returns the multiplicative inverse of a (which must be non-zero).
func gfInv(a byte) byte {
	return gfExp[255-int(gfLog[a])]
}

// gfMulAdd folds c*src into dst (dst[i] ^= c*src[i]) over [lo, hi).
func gfMulAdd(dst, src []byte, c byte, lo, hi int) {
	if c == 0 {
		return
	}
	if c == 1 {
		for i := lo; i < hi; i++ {
			dst[i] ^= src[i]
		}
		return
	}
	lc := int(gfLog[c])
	for i := lo; i < hi; i++ {
		if s := src[i]; s != 0 {
			dst[i] ^= gfExp[lc+int(gfLog[s])]
		}
	}
}

// rsGrain is the per-chunk byte count for the par-engine loops: large
// enough that chunk dispatch is noise, small enough that typical block
// payloads split across workers.
const rsGrain = 8 << 10

// rsMatrix returns the (d+p) x d systematic generator: a Vandermonde
// matrix over the points 2^0..2^(d+p-1) right-multiplied by the inverse
// of its top d rows, making rows 0..d-1 the identity. d+p must be at
// most 255 so the evaluation points stay distinct.
func rsMatrix(d, p int) [][]byte {
	n := d + p
	v := make([][]byte, n)
	for r := 0; r < n; r++ {
		v[r] = make([]byte, d)
		x := gfExp[r%255] // evaluation point 2^r
		acc := byte(1)
		for c := 0; c < d; c++ {
			v[r][c] = acc
			acc = gfMul(acc, x)
		}
	}
	top := make([][]byte, d)
	for r := range top {
		top[r] = append([]byte(nil), v[r]...)
	}
	inv, err := gfInvert(top)
	if err != nil {
		// The top rows of a Vandermonde matrix over distinct points are
		// always invertible; reaching here is a programming error.
		panic(fmt.Sprintf("codec: non-invertible Vandermonde top: %v", err))
	}
	m := make([][]byte, n)
	for r := 0; r < n; r++ {
		m[r] = make([]byte, d)
		for c := 0; c < d; c++ {
			var s byte
			for k := 0; k < d; k++ {
				s ^= gfMul(v[r][k], inv[k][c])
			}
			m[r][c] = s
		}
	}
	return m
}

// gfInvert returns the inverse of the square matrix a (destroying a) by
// Gauss-Jordan elimination over GF(2^8).
func gfInvert(a [][]byte) ([][]byte, error) {
	n := len(a)
	inv := make([][]byte, n)
	for i := range inv {
		inv[i] = make([]byte, n)
		inv[i][i] = 1
	}
	for col := 0; col < n; col++ {
		pivot := -1
		for r := col; r < n; r++ {
			if a[r][col] != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, fmt.Errorf("codec: singular matrix at column %d", col)
		}
		a[col], a[pivot] = a[pivot], a[col]
		inv[col], inv[pivot] = inv[pivot], inv[col]
		if pc := a[col][col]; pc != 1 {
			ic := gfInv(pc)
			for c := 0; c < n; c++ {
				a[col][c] = gfMul(a[col][c], ic)
				inv[col][c] = gfMul(inv[col][c], ic)
			}
		}
		for r := 0; r < n; r++ {
			if r == col || a[r][col] == 0 {
				continue
			}
			f := a[r][col]
			for c := 0; c < n; c++ {
				a[r][c] ^= gfMul(f, a[col][c])
				inv[r][c] ^= gfMul(f, inv[col][c])
			}
		}
	}
	return inv, nil
}

// RSShardLen returns the shard length for an n-byte payload split into d
// data shards: ceil(n/d), with a floor of 1 so empty payloads still
// produce addressable shards.
func RSShardLen(n, d int) int {
	l := (n + d - 1) / d
	if l < 1 {
		l = 1
	}
	return l
}

// rsCheck validates an erasure geometry.
func rsCheck(d, p int) error {
	if d < 1 || p < 0 || d+p > 255 {
		return fmt.Errorf("codec: invalid erasure geometry d=%d p=%d (want d>=1, p>=0, d+p<=255)", d, p)
	}
	return nil
}

// RSEncode splits data into d data shards plus p parity shards, each of
// RSShardLen(len(data), d) bytes. Shard buffers are drawn from the codec
// buffer pool (callers recycle them with PutBuffer when the owning
// snapshot is destroyed); data is only read. The data shards are the
// payload bytes themselves (zero-padded), so decoding with all data
// shards present is a plain concatenation.
func RSEncode(data []byte, d, p int) ([][]byte, error) {
	if err := rsCheck(d, p); err != nil {
		return nil, err
	}
	sl := RSShardLen(len(data), d)
	shards := make([][]byte, d+p)
	for i := range shards {
		s := GetBuffer(sl)[:sl]
		if i >= d {
			// Parity accumulates with XOR; the pool does not zero buffers.
			clear(s)
		}
		shards[i] = s
	}
	for i := 0; i < d; i++ {
		lo := i * sl
		hi := lo + sl
		if hi > len(data) {
			hi = len(data)
		}
		n := 0
		if hi > lo {
			n = copy(shards[i], data[lo:hi])
		}
		clear(shards[i][n:])
	}
	if p > 0 {
		m := rsMatrix(d, p)
		par.For(sl, rsGrain, func(lo, hi int) {
			for j := 0; j < p; j++ {
				row := m[d+j]
				for i := 0; i < d; i++ {
					gfMulAdd(shards[d+j], shards[i], row[i], lo, hi)
				}
			}
		})
	}
	return shards, nil
}

// RSReconstruct fills in the missing (nil) shards of a d+p shard set in
// place, allocating each recovered shard from the codec buffer pool. At
// least d shards must be present and all present shards must share one
// length. It reconstructs every missing shard — data and parity — so the
// set is back at full redundancy afterwards.
func RSReconstruct(shards [][]byte, d, p int) error {
	if err := rsCheck(d, p); err != nil {
		return err
	}
	if len(shards) != d+p {
		return fmt.Errorf("codec: got %d shards, want %d", len(shards), d+p)
	}
	present := make([]int, 0, d)
	sl := -1
	missing := 0
	for i, s := range shards {
		if s == nil {
			missing++
			continue
		}
		if sl < 0 {
			sl = len(s)
		} else if len(s) != sl {
			return fmt.Errorf("codec: shard %d length %d != %d", i, len(s), sl)
		}
		if len(present) < d {
			present = append(present, i)
		}
	}
	if missing == 0 {
		return nil
	}
	if len(present) < d {
		return fmt.Errorf("codec: only %d of %d shards present, need %d", d+p-missing, d+p, d)
	}
	m := rsMatrix(d, p)
	sub := make([][]byte, d)
	for i, r := range present {
		sub[i] = append([]byte(nil), m[r]...)
	}
	inv, err := gfInvert(sub)
	if err != nil {
		return fmt.Errorf("codec: reconstruction matrix: %w", err)
	}
	// Decode rows: data shard c = inv[c] . present shards. Only missing
	// data shards need decoding; surviving ones are already correct.
	data := make([][]byte, d)
	for c := 0; c < d; c++ {
		if shards[c] != nil {
			data[c] = shards[c]
		}
	}
	var rebuiltData []int
	for c := 0; c < d; c++ {
		if data[c] == nil {
			b := GetBuffer(sl)[:sl]
			clear(b)
			data[c] = b
			rebuiltData = append(rebuiltData, c)
		}
	}
	var rebuiltParity []int
	for j := 0; j < p; j++ {
		if shards[d+j] == nil {
			b := GetBuffer(sl)[:sl]
			clear(b)
			shards[d+j] = b
			rebuiltParity = append(rebuiltParity, j)
		}
	}
	par.For(sl, rsGrain, func(lo, hi int) {
		for _, c := range rebuiltData {
			for i, r := range present {
				gfMulAdd(data[c], shards[r], inv[c][i], lo, hi)
			}
		}
		// Missing parity rows regenerate from the (now complete) data.
		for _, j := range rebuiltParity {
			row := m[d+j]
			for i := 0; i < d; i++ {
				gfMulAdd(shards[d+j], data[i], row[i], lo, hi)
			}
		}
	})
	for _, c := range rebuiltData {
		shards[c] = data[c]
	}
	return nil
}

// RSJoin concatenates the d data shards back into an n-byte payload in
// dst (which must have capacity n). It is the decode fast path when no
// data shard was lost, and the final assembly step after RSReconstruct.
func RSJoin(dst []byte, shards [][]byte, d, n int) []byte {
	dst = dst[:n]
	sl := RSShardLen(n, d)
	par.For(d, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			off := i * sl
			if off >= n {
				continue
			}
			end := off + sl
			if end > n {
				end = n
			}
			copy(dst[off:end], shards[i])
		}
	})
	return dst
}

package codec

import (
	"bytes"
	"math"
	"testing"
)

// Seed corpus helpers: valid encodings plus adversarial headers. The fuzz
// targets assert the decoders never panic and that a successful decode is
// exact: re-encoding the decoded values reproduces the consumed bytes
// byte-for-byte (the bulk paths must be lossless and canonical).

func FuzzFloat64s(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendFloat64s(nil, nil))
	f.Add(AppendFloat64s(nil, []float64{1.5, -2.25, math.Pi}))
	f.Add(AppendFloat64s(nil, []float64{math.Inf(1), math.Inf(-1), math.Copysign(0, -1), math.NaN()}))
	// Truncated payload: header promises 3 values, buffer holds 1.
	f.Add(AppendFloat64s(nil, []float64{1, 2, 3})[:16])
	// Truncated header.
	f.Add(AppendInt(nil, 2)[:5])
	// Length header far past the buffer, and one crafted to overflow 8*n.
	f.Add(AppendInt(nil, 1<<40))
	f.Add(AppendInt(nil, math.MaxInt64/4))
	// Negative length.
	f.Add(AppendInt(nil, -1))
	f.Fuzz(func(t *testing.T, data []byte) {
		vs, rest, err := Float64s(data)
		if err != nil {
			return
		}
		consumed := len(data) - len(rest)
		if consumed != SizeFloat64s(len(vs)) {
			t.Fatalf("decoded %d values but consumed %d bytes", len(vs), consumed)
		}
		re := AppendFloat64s(nil, vs)
		if !bytes.Equal(re, data[:consumed]) {
			t.Fatalf("re-encode of %d values is not byte-identical to input", len(vs))
		}
	})
}

func FuzzInts(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendInts(nil, nil))
	f.Add(AppendInts(nil, []int{0, 1, -1, math.MaxInt64, math.MinInt64}))
	f.Add(AppendInts(nil, []int{7, 8, 9})[:12])
	f.Add(AppendInt(nil, 1<<40))
	f.Add(AppendInt(nil, math.MaxInt64/4))
	f.Add(AppendInt(nil, -1))
	f.Fuzz(func(t *testing.T, data []byte) {
		vs, rest, err := Ints(data)
		if err != nil {
			return
		}
		consumed := len(data) - len(rest)
		if consumed != SizeInts(len(vs)) {
			t.Fatalf("decoded %d values but consumed %d bytes", len(vs), consumed)
		}
		re := AppendInts(nil, vs)
		if !bytes.Equal(re, data[:consumed]) {
			t.Fatalf("re-encode of %d values is not byte-identical to input", len(vs))
		}
	})
}

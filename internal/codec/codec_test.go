package codec

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestScalarRoundtrip(t *testing.T) {
	b := AppendInt(nil, -42)
	b = AppendUint64(b, 7)
	b = AppendFloat64(b, 3.25)
	i, b2, err := Int(b)
	if err != nil || i != -42 {
		t.Fatalf("Int = %d, %v", i, err)
	}
	u, b3, err := Uint64(b2)
	if err != nil || u != 7 {
		t.Fatalf("Uint64 = %d, %v", u, err)
	}
	f, rest, err := Float64(b3)
	if err != nil || f != 3.25 {
		t.Fatalf("Float64 = %v, %v", f, err)
	}
	if len(rest) != 0 {
		t.Fatalf("rest = %d bytes", len(rest))
	}
}

func TestSliceRoundtrip(t *testing.T) {
	f := func(fs []float64, is []int) bool {
		b := AppendFloat64s(nil, fs)
		b = AppendInts(b, is)
		gotF, b2, err := Float64s(b)
		if err != nil || len(gotF) != len(fs) {
			return false
		}
		for i := range fs {
			if gotF[i] != fs[i] && !(math.IsNaN(gotF[i]) && math.IsNaN(fs[i])) {
				return false
			}
		}
		gotI, rest, err := Ints(b2)
		if err != nil || len(gotI) != len(is) || len(rest) != 0 {
			return false
		}
		for i := range is {
			if gotI[i] != is[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShortBuffers(t *testing.T) {
	if _, _, err := Uint64([]byte{1, 2}); !errors.Is(err, ErrShortBuffer) {
		t.Error("Uint64 short buffer not detected")
	}
	if _, _, err := Float64s(AppendInt(nil, 5)); !errors.Is(err, ErrShortBuffer) {
		t.Error("Float64s truncated payload not detected")
	}
	if _, _, err := Ints(AppendInt(nil, -1)); !errors.Is(err, ErrShortBuffer) {
		t.Error("Ints negative length not rejected")
	}
	if _, _, err := Float64s(nil); !errors.Is(err, ErrShortBuffer) {
		t.Error("empty input not rejected")
	}
}

func TestEmptySlices(t *testing.T) {
	b := AppendFloat64s(nil, nil)
	vs, rest, err := Float64s(b)
	if err != nil || len(vs) != 0 || len(rest) != 0 {
		t.Fatalf("empty roundtrip: %v %v %v", vs, rest, err)
	}
}

package block

import (
	"math"
	"testing"

	"github.com/rgml/rgml/internal/grid"
	"github.com/rgml/rgml/internal/la"
)

func fuzzSeedBlocks() []*MatrixBlock {
	g, err := grid.New(10, 8, 3, 2)
	if err != nil {
		panic(err)
	}
	d := NewDenseBlock(g, 1, 1)
	for i := range d.Dense.Data {
		d.Dense.Data[i] = float64(i) * 1.25
	}
	s := NewSparseBlock(g, 2, 0)
	s.Sparse.PasteSub(0, 0, la.NewSparseCSCFromTriplets(3, 4, []la.Triplet{
		{Row: 0, Col: 0, Val: 1},
		{Row: 2, Col: 1, Val: -3.5},
		{Row: 1, Col: 3, Val: math.Pi},
	}))
	return []*MatrixBlock{d, s}
}

// FuzzDecode feeds Decode truncated and corrupted wire images. Decode must
// never panic, and when it accepts an input the decoded block must survive
// a re-encode/re-decode round trip (the canonical-form property the
// restore paths rely on).
func FuzzDecode(f *testing.F) {
	for _, b := range fuzzSeedBlocks() {
		enc := b.Encode()
		f.Add(enc)
		f.Add(enc[:len(enc)/2]) // truncated payload
		f.Add(enc[:7])          // truncated header
		bad := append([]byte(nil), enc...)
		bad[0] = 0xff // unknown kind
		f.Add(bad)
		short := append([]byte(nil), enc...)
		short[56] = 0x7f // corrupt the payload length header
		f.Add(short)
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := Decode(data)
		if err != nil {
			return
		}
		re := b.Encode()
		if len(re) != b.EncodedSize() {
			t.Fatalf("EncodedSize()=%d but Encode() emitted %d bytes", b.EncodedSize(), len(re))
		}
		b2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-decode of accepted block failed: %v", err)
		}
		if b2.RB != b.RB || b2.CB != b.CB || b2.Row0 != b.Row0 || b2.Col0 != b.Col0 ||
			b2.Rows != b.Rows || b2.Cols != b.Cols || b2.Kind() != b.Kind() {
			t.Fatalf("round trip changed block header: %v vs %v", b, b2)
		}
	})
}

// TestDecodeTruncatedEveryPrefix runs Decode over every prefix of valid
// encodings: all must fail cleanly (no panic) except the full image.
func TestDecodeTruncatedEveryPrefix(t *testing.T) {
	for _, b := range fuzzSeedBlocks() {
		enc := b.Encode()
		for n := 0; n < len(enc); n++ {
			if _, err := Decode(enc[:n]); err == nil {
				t.Fatalf("%v: Decode accepted %d-byte prefix of %d-byte image", b, n, len(enc))
			}
		}
		if _, err := Decode(enc); err != nil {
			t.Fatalf("%v: Decode rejected full image: %v", b, err)
		}
	}
}

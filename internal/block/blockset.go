package block

import (
	"fmt"
	"sort"

	"github.com/rgml/rgml/internal/par"
)

// BlockSet is the container for the blocks a single place holds, the
// counterpart of x10.matrix.distblock.BlockSet. Blocks are kept ordered by
// block ID for deterministic iteration (the resilience tests require that
// replayed computations reproduce results exactly).
type BlockSet struct {
	blocks []*MatrixBlock
	// ids mirrors blocks with each block's linear ID for ordering.
	ids []int
}

// NewBlockSet returns an empty set.
func NewBlockSet() *BlockSet { return &BlockSet{} }

// Add inserts b with linear id, keeping the set ordered. Adding a duplicate
// id panics: the distribution logic must never assign a block twice.
func (s *BlockSet) Add(id int, b *MatrixBlock) {
	i := sort.SearchInts(s.ids, id)
	if i < len(s.ids) && s.ids[i] == id {
		panic(fmt.Sprintf("block: duplicate block id %d", id))
	}
	s.ids = append(s.ids, 0)
	copy(s.ids[i+1:], s.ids[i:])
	s.ids[i] = id
	s.blocks = append(s.blocks, nil)
	copy(s.blocks[i+1:], s.blocks[i:])
	s.blocks[i] = b
}

// Len returns the number of blocks in the set.
func (s *BlockSet) Len() int { return len(s.blocks) }

// Find returns the block with linear id, or nil.
func (s *BlockSet) Find(id int) *MatrixBlock {
	i := sort.SearchInts(s.ids, id)
	if i < len(s.ids) && s.ids[i] == id {
		return s.blocks[i]
	}
	return nil
}

// Each calls fn for every block in ascending ID order.
func (s *BlockSet) Each(fn func(id int, b *MatrixBlock)) {
	for i, b := range s.blocks {
		fn(s.ids[i], b)
	}
}

// EachPar calls fn for every block, fanning the blocks across the kernel
// worker pool (internal/par); with one worker it degenerates to Each.
// Invocations may run concurrently and in any order, so fn must write
// only state owned by its block and must not mutate the set. Callers that
// need the deterministic ascending-ID combine order keep using Each.
func (s *BlockSet) EachPar(fn func(id int, b *MatrixBlock)) {
	par.For(len(s.blocks), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(s.ids[i], s.blocks[i])
		}
	})
}

// IDs returns the block IDs in ascending order.
func (s *BlockSet) IDs() []int {
	return append([]int(nil), s.ids...)
}

// Bytes returns the total payload size of the set.
func (s *BlockSet) Bytes() int {
	n := 0
	for _, b := range s.blocks {
		n += b.Bytes()
	}
	return n
}

// Clone returns a deep copy of the set.
func (s *BlockSet) Clone() *BlockSet {
	out := NewBlockSet()
	s.Each(func(id int, b *MatrixBlock) { out.Add(id, b.Clone()) })
	return out
}

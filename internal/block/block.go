// Package block implements matrix blocks and per-place block containers
// (the counterpart of x10.matrix.block.MatrixBlock and
// x10.matrix.distblock.BlockSet). A DistBlockMatrix assigns one or more
// blocks to each place; letting a place hold a *set* of blocks is what
// enables the shrink restoration mode to remap existing blocks onto the
// surviving places without repartitioning the matrix (paper section III-A).
package block

import (
	"fmt"

	"github.com/rgml/rgml/internal/codec"
	"github.com/rgml/rgml/internal/grid"
	"github.com/rgml/rgml/internal/la"
)

// Kind discriminates a block's storage format.
type Kind uint8

const (
	// Dense blocks store a column-major la.DenseMatrix.
	Dense Kind = iota
	// Sparse blocks store a compressed-sparse-column la.SparseCSC.
	Sparse
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Dense:
		return "dense"
	case Sparse:
		return "sparse"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// MatrixBlock is one rectangular tile of a distributed matrix: its
// position in the data grid, its origin in absolute matrix coordinates,
// and its payload in dense or sparse form.
type MatrixBlock struct {
	RB, CB     int // block coordinates in the data grid
	Row0, Col0 int // origin in matrix coordinates
	Rows, Cols int

	// Exactly one of Dense / Sparse is non-nil, per Kind.
	Dense  *la.DenseMatrix
	Sparse *la.SparseCSC

	// Ver is the block's content version for delta checkpointing: every
	// mutation of the payload bumps it (Touch), and a checkpoint whose
	// previous entry recorded the same version carries the entry forward
	// without re-encoding. Code that writes into Dense/Sparse directly
	// must call Touch (or the owning matrix's MarkDirty); a missed bump
	// is caught by the delta path's CRC comparison only when the version
	// also changed, so the version is the contract, the CRC the backstop.
	Ver uint64
	// Retained marks a block whose payload survived a Remake on a
	// surviving place: partial restore validates it against the snapshot
	// digest instead of re-loading it, then clears the flag.
	Retained bool
}

// Touch records a payload mutation for delta checkpointing.
func (b *MatrixBlock) Touch() { b.Ver++ }

// NewDenseBlock allocates a zeroed dense block for grid position (rb, cb)
// of g.
func NewDenseBlock(g *grid.Grid, rb, cb int) *MatrixBlock {
	r0, c0 := g.BlockOrigin(rb, cb)
	rows, cols := g.BlockDims(rb, cb)
	return &MatrixBlock{
		RB: rb, CB: cb, Row0: r0, Col0: c0, Rows: rows, Cols: cols,
		Dense: la.NewDense(rows, cols),
	}
}

// NewSparseBlock allocates an empty sparse block for grid position (rb, cb)
// of g.
func NewSparseBlock(g *grid.Grid, rb, cb int) *MatrixBlock {
	r0, c0 := g.BlockOrigin(rb, cb)
	rows, cols := g.BlockDims(rb, cb)
	return &MatrixBlock{
		RB: rb, CB: cb, Row0: r0, Col0: c0, Rows: rows, Cols: cols,
		Sparse: la.NewSparseCSC(rows, cols),
	}
}

// Kind returns the block's storage format.
func (b *MatrixBlock) Kind() Kind {
	if b.Dense != nil {
		return Dense
	}
	return Sparse
}

// Clone returns an independent deep copy.
func (b *MatrixBlock) Clone() *MatrixBlock {
	out := *b
	if b.Dense != nil {
		out.Dense = b.Dense.Clone()
	}
	if b.Sparse != nil {
		out.Sparse = b.Sparse.Clone()
	}
	return &out
}

// Bytes returns the payload size for network-cost accounting.
func (b *MatrixBlock) Bytes() int {
	if b.Dense != nil {
		return b.Dense.Bytes()
	}
	return b.Sparse.Bytes()
}

// At returns element (i, j) in block-local coordinates.
func (b *MatrixBlock) At(i, j int) float64 {
	if b.Dense != nil {
		return b.Dense.At(i, j)
	}
	return b.Sparse.At(i, j)
}

// MultVecInto accumulates this block's contribution to y = M·x for the
// whole distributed matrix M: y[Row0:Row0+Rows] += B · x[Col0:Col0+Cols].
// x is indexed in global column coordinates and yLocal in coordinates
// local to the place's row range, offset by yOffset.
func (b *MatrixBlock) MultVecInto(x la.Vector, yLocal la.Vector, yOffset int) {
	xSeg := x[b.Col0 : b.Col0+b.Cols]
	ySeg := yLocal[b.Row0-yOffset : b.Row0-yOffset+b.Rows]
	tmp := la.NewVector(b.Rows)
	if b.Dense != nil {
		b.Dense.MultVec(xSeg, tmp)
	} else {
		b.Sparse.MultVec(xSeg, tmp)
	}
	ySeg.Add(tmp)
}

// TransMultVecInto accumulates this block's contribution to y = Mᵀ·x:
// y[Col0:Col0+Cols] += Bᵀ · x[Row0:Row0+Rows]. x is indexed in global row
// coordinates; yLocal covers the full column dimension (callers reduce the
// per-place partials afterwards).
func (b *MatrixBlock) TransMultVecInto(x la.Vector, yLocal la.Vector) {
	xSeg := x[b.Row0 : b.Row0+b.Rows]
	ySeg := yLocal[b.Col0 : b.Col0+b.Cols]
	tmp := la.NewVector(b.Cols)
	if b.Dense != nil {
		b.Dense.TransMultVec(xSeg, tmp)
	} else {
		b.Sparse.TransMultVec(xSeg, tmp)
	}
	ySeg.Add(tmp)
}

// MultVecAssign computes dst = B · x[Col0:Col0+Cols], overwriting dst
// (length b.Rows). Unlike MultVecInto it neither allocates a temporary
// nor accumulates, so hot iteration paths can reuse per-block scratch
// vectors across calls.
func (b *MatrixBlock) MultVecAssign(x, dst la.Vector) {
	xSeg := x[b.Col0 : b.Col0+b.Cols]
	if b.Dense != nil {
		b.Dense.MultVec(xSeg, dst)
	} else {
		b.Sparse.MultVec(xSeg, dst)
	}
}

// TransMultVecAssign computes dst = Bᵀ · x[Row0:Row0+Rows], overwriting
// dst (length b.Cols); the allocation-free counterpart of
// TransMultVecInto.
func (b *MatrixBlock) TransMultVecAssign(x, dst la.Vector) {
	xSeg := x[b.Row0 : b.Row0+b.Rows]
	if b.Dense != nil {
		b.Dense.TransMultVec(xSeg, dst)
	} else {
		b.Sparse.TransMultVec(xSeg, dst)
	}
}

// Scale multiplies the block's payload by a.
func (b *MatrixBlock) Scale(a float64) {
	if b.Dense != nil {
		b.Dense.Scale(a)
	} else {
		b.Sparse.Scale(a)
	}
	b.Touch()
}

// String implements fmt.Stringer.
func (b *MatrixBlock) String() string {
	return fmt.Sprintf("block(%d,%d %dx%d@%d,%d %s)", b.RB, b.CB, b.Rows, b.Cols, b.Row0, b.Col0, b.Kind())
}

// EncodedSize returns the exact wire size of the block, so encode buffers
// can be allocated (or drawn from the pool) pre-sized with no regrowth.
func (b *MatrixBlock) EncodedSize() int {
	n := 7 * codec.SizeInt
	if b.Dense != nil {
		return n + codec.SizeFloat64s(len(b.Dense.Data))
	}
	return n + codec.SizeInts(len(b.Sparse.ColPtr)) +
		codec.SizeInts(len(b.Sparse.RowIdx)) +
		codec.SizeFloat64s(len(b.Sparse.Vals))
}

// EncodeInto serializes the block to the snapshot wire format through e,
// which folds the CRC-32C of the payload into the same pass (the snapshot
// fast path: one traversal serializes and checksums).
func (b *MatrixBlock) EncodeInto(e *codec.Encoder) {
	e.PutInt(int(b.Kind()))
	e.PutInt(b.RB)
	e.PutInt(b.CB)
	e.PutInt(b.Row0)
	e.PutInt(b.Col0)
	e.PutInt(b.Rows)
	e.PutInt(b.Cols)
	if b.Dense != nil {
		e.PutFloat64s(b.Dense.Data)
	} else {
		e.PutInts(b.Sparse.ColPtr)
		e.PutInts(b.Sparse.RowIdx)
		e.PutFloat64s(b.Sparse.Vals)
	}
}

// Encode serializes the block to the snapshot wire format into a fresh
// exactly-sized buffer.
func (b *MatrixBlock) Encode() []byte {
	e := codec.WrapEncoder(make([]byte, 0, b.EncodedSize()))
	b.EncodeInto(&e)
	return e.Bytes()
}

// Decode deserializes a block from the snapshot wire format.
func Decode(data []byte) (*MatrixBlock, error) {
	return DecodeC(data, nil)
}

// DecodeC is Decode for a snapshot whose bulk frames were written through
// comp (nil for the legacy uncompressed format). The block header is
// always fixed-width; only the payload frames route through comp.
func DecodeC(data []byte, comp codec.Compressor) (*MatrixBlock, error) {
	var (
		b    MatrixBlock
		kind int
		err  error
	)
	rd := data
	for _, dst := range []*int{&kind, &b.RB, &b.CB, &b.Row0, &b.Col0, &b.Rows, &b.Cols} {
		if *dst, rd, err = codec.Int(rd); err != nil {
			return nil, fmt.Errorf("block: decode header: %w", err)
		}
	}
	switch Kind(kind) {
	case Dense:
		data, rd, err := codec.Float64sIntoC(comp, nil, rd)
		if err != nil {
			return nil, fmt.Errorf("block: decode dense payload: %w", err)
		}
		if len(data) != b.Rows*b.Cols {
			return nil, fmt.Errorf("block: dense payload %d for %dx%d", len(data), b.Rows, b.Cols)
		}
		_ = rd
		b.Dense = la.NewDenseFrom(b.Rows, b.Cols, data)
	case Sparse:
		colPtr, rd, err := codec.IntsIntoC(comp, nil, rd)
		if err != nil {
			return nil, fmt.Errorf("block: decode colptr: %w", err)
		}
		rowIdx, rd, err := codec.IntsIntoC(comp, nil, rd)
		if err != nil {
			return nil, fmt.Errorf("block: decode rowidx: %w", err)
		}
		vals, _, err := codec.Float64sIntoC(comp, nil, rd)
		if err != nil {
			return nil, fmt.Errorf("block: decode vals: %w", err)
		}
		if len(colPtr) != b.Cols+1 || len(rowIdx) != len(vals) {
			return nil, fmt.Errorf("block: inconsistent sparse payload")
		}
		b.Sparse = &la.SparseCSC{Rows: b.Rows, Cols: b.Cols, ColPtr: colPtr, RowIdx: rowIdx, Vals: vals}
	default:
		return nil, fmt.Errorf("block: unknown kind %d", kind)
	}
	return &b, nil
}

// DecodeInto deserializes a block of the same kind and shape as dst from
// the snapshot wire format, overwriting dst's existing payload storage
// instead of allocating fresh slices (sparse index arrays regrow only
// when the decoded block holds more nonzeros than dst has capacity for).
// Same-grid restores use it so the first checkpoint after a restore
// re-encodes from the same allocations the previous cycle pooled.
func DecodeInto(dst *MatrixBlock, data []byte) error {
	return DecodeIntoC(dst, data, nil)
}

// DecodeIntoC is DecodeInto for a snapshot whose bulk frames were written
// through comp (nil for the legacy uncompressed format).
func DecodeIntoC(dst *MatrixBlock, data []byte, comp codec.Compressor) error {
	var (
		h    MatrixBlock
		kind int
		err  error
	)
	rd := data
	for _, p := range []*int{&kind, &h.RB, &h.CB, &h.Row0, &h.Col0, &h.Rows, &h.Cols} {
		if *p, rd, err = codec.Int(rd); err != nil {
			return fmt.Errorf("block: decode header: %w", err)
		}
	}
	if Kind(kind) != dst.Kind() || h.Rows != dst.Rows || h.Cols != dst.Cols {
		return fmt.Errorf("block: decode %v %dx%d into %v %dx%d",
			Kind(kind), h.Rows, h.Cols, dst.Kind(), dst.Rows, dst.Cols)
	}
	switch Kind(kind) {
	case Dense:
		vals, _, err := codec.Float64sIntoC(comp, dst.Dense.Data, rd)
		if err != nil {
			return fmt.Errorf("block: decode dense payload: %w", err)
		}
		if len(vals) != dst.Rows*dst.Cols {
			return fmt.Errorf("block: dense payload %d for %dx%d", len(vals), dst.Rows, dst.Cols)
		}
		dst.Dense.Data = vals
	case Sparse:
		sp := dst.Sparse
		colPtr, rd, err := codec.IntsIntoC(comp, sp.ColPtr, rd)
		if err != nil {
			return fmt.Errorf("block: decode colptr: %w", err)
		}
		rowIdx, rd, err := codec.IntsIntoC(comp, sp.RowIdx, rd)
		if err != nil {
			return fmt.Errorf("block: decode rowidx: %w", err)
		}
		vals, _, err := codec.Float64sIntoC(comp, sp.Vals, rd)
		if err != nil {
			return fmt.Errorf("block: decode vals: %w", err)
		}
		if len(colPtr) != dst.Cols+1 || len(rowIdx) != len(vals) {
			return fmt.Errorf("block: inconsistent sparse payload")
		}
		sp.ColPtr, sp.RowIdx, sp.Vals = colPtr, rowIdx, vals
	}
	dst.Touch()
	return nil
}

package block

import (
	"strings"
	"testing"
	"testing/quick"

	"github.com/rgml/rgml/internal/grid"
	"github.com/rgml/rgml/internal/la"
)

func testGrid(t *testing.T) *grid.Grid {
	t.Helper()
	g, err := grid.New(10, 8, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewBlocksGeometry(t *testing.T) {
	g := testGrid(t)
	d := NewDenseBlock(g, 1, 1)
	// Rows split 4,3,3; cols split 4,4. Block (1,1): 3x4 at (4,4).
	if d.Rows != 3 || d.Cols != 4 || d.Row0 != 4 || d.Col0 != 4 {
		t.Fatalf("dense block geometry: %v", d)
	}
	if d.Kind() != Dense || d.Dense == nil || d.Sparse != nil {
		t.Error("dense block kind wrong")
	}
	s := NewSparseBlock(g, 2, 0)
	if s.Rows != 3 || s.Cols != 4 || s.Row0 != 7 || s.Col0 != 0 {
		t.Fatalf("sparse block geometry: %v", s)
	}
	if s.Kind() != Sparse {
		t.Error("sparse block kind wrong")
	}
}

func TestKindString(t *testing.T) {
	if Dense.String() != "dense" || Sparse.String() != "sparse" {
		t.Error("Kind.String wrong")
	}
	if !strings.HasPrefix(Kind(9).String(), "Kind(") {
		t.Error("unknown kind string")
	}
}

func TestBlockCloneIndependent(t *testing.T) {
	g := testGrid(t)
	d := NewDenseBlock(g, 0, 0)
	d.Dense.Set(0, 0, 5)
	c := d.Clone()
	c.Dense.Set(0, 0, 9)
	if d.Dense.At(0, 0) != 5 {
		t.Error("dense clone shares storage")
	}
	s := NewSparseBlock(g, 0, 0)
	s.Sparse.PasteSub(0, 0, la.NewSparseCSCFromTriplets(4, 4, []la.Triplet{{Row: 1, Col: 1, Val: 3}}))
	cs := s.Clone()
	cs.Sparse.Vals[0] = 7
	if s.Sparse.Vals[0] != 3 {
		t.Error("sparse clone shares storage")
	}
}

func TestMultVecInto(t *testing.T) {
	g := testGrid(t)
	rng := la.NewRNG(1)
	b := NewDenseBlock(g, 1, 1)
	copy(b.Dense.Data, la.RandomDense(3, 4, rng).Data)

	x := la.RandomVector(8, rng)
	// Place owns row range [4, 7); compute block contribution.
	yLocal := la.NewVector(3)
	b.MultVecInto(x, yLocal, 4)
	want := la.NewVector(3)
	b.Dense.MultVec(x[4:8], want)
	if !yLocal.EqualApprox(want, 1e-14) {
		t.Errorf("MultVecInto = %v, want %v", yLocal, want)
	}
	// Accumulation: calling twice doubles.
	b.MultVecInto(x, yLocal, 4)
	if !yLocal.EqualApprox(want.Scale(2), 1e-14) {
		t.Error("MultVecInto does not accumulate")
	}
}

func TestTransMultVecInto(t *testing.T) {
	g := testGrid(t)
	rng := la.NewRNG(2)
	b := NewSparseBlock(g, 1, 0)
	b.Sparse.PasteSub(0, 0, la.RandomSparseCSC(3, 4, 2, rng))

	x := la.RandomVector(10, rng)
	yLocal := la.NewVector(8)
	b.TransMultVecInto(x, yLocal)
	want := la.NewVector(4)
	b.Sparse.TransMultVec(x[4:7], want)
	for j := 0; j < 4; j++ {
		if yLocal[j] != want[j] {
			t.Fatalf("TransMultVecInto col %d = %v, want %v", j, yLocal[j], want[j])
		}
	}
	for j := 4; j < 8; j++ {
		if yLocal[j] != 0 {
			t.Fatal("columns outside block touched")
		}
	}
}

func TestBlockScale(t *testing.T) {
	g := testGrid(t)
	d := NewDenseBlock(g, 0, 0)
	d.Dense.Set(1, 1, 2)
	d.Scale(3)
	if d.Dense.At(1, 1) != 6 {
		t.Error("dense Scale failed")
	}
}

func TestEncodeDecodeDense(t *testing.T) {
	g := testGrid(t)
	rng := la.NewRNG(3)
	b := NewDenseBlock(g, 2, 1)
	copy(b.Dense.Data, la.RandomDense(b.Rows, b.Cols, rng).Data)
	got, err := Decode(b.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.RB != b.RB || got.CB != b.CB || got.Row0 != b.Row0 || got.Col0 != b.Col0 {
		t.Fatal("header mismatch")
	}
	if !got.Dense.EqualApprox(b.Dense, 0) {
		t.Fatal("payload mismatch")
	}
}

func TestEncodeDecodeSparse(t *testing.T) {
	g := testGrid(t)
	rng := la.NewRNG(4)
	b := NewSparseBlock(g, 0, 1)
	b.Sparse.PasteSub(0, 0, la.RandomSparseCSC(b.Rows, b.Cols, 2, rng))
	got, err := Decode(b.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind() != Sparse || !got.Sparse.EqualApprox(b.Sparse, 0) {
		t.Fatal("sparse roundtrip mismatch")
	}
}

// Property: encode/decode is the identity for random dense blocks.
func TestEncodeDecodeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := la.NewRNG(seed)
		rows := 1 + rng.Intn(8)
		cols := 1 + rng.Intn(8)
		g, err := grid.New(rows*2, cols*2, 2, 2)
		if err != nil {
			return true
		}
		b := NewDenseBlock(g, rng.Intn(2), rng.Intn(2))
		for i := range b.Dense.Data {
			b.Dense.Data[i] = rng.Float64()
		}
		got, err := Decode(b.Encode())
		return err == nil && got.Dense.EqualApprox(b.Dense, 0) && got.Bytes() == b.Bytes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Error("empty decode should fail")
	}
	g := testGrid(t)
	b := NewDenseBlock(g, 0, 0)
	enc := b.Encode()
	if _, err := Decode(enc[:len(enc)-4]); err == nil {
		t.Error("truncated decode should fail")
	}
	// Corrupt the kind field.
	bad := append([]byte(nil), enc...)
	bad[0] = 99
	if _, err := Decode(bad); err == nil {
		t.Error("unknown kind should fail")
	}
}

func TestBlockSetOrderAndFind(t *testing.T) {
	g := testGrid(t)
	s := NewBlockSet()
	for _, id := range []int{4, 1, 3} {
		rb, cb := g.BlockCoords(id)
		s.Add(id, NewDenseBlock(g, rb, cb))
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	ids := s.IDs()
	if ids[0] != 1 || ids[1] != 3 || ids[2] != 4 {
		t.Fatalf("IDs = %v", ids)
	}
	if s.Find(3) == nil || s.Find(2) != nil {
		t.Error("Find wrong")
	}
	var seen []int
	s.Each(func(id int, b *MatrixBlock) { seen = append(seen, id) })
	if len(seen) != 3 || seen[0] != 1 || seen[2] != 4 {
		t.Errorf("Each order = %v", seen)
	}
}

func TestBlockSetDuplicatePanics(t *testing.T) {
	g := testGrid(t)
	s := NewBlockSet()
	s.Add(1, NewDenseBlock(g, 0, 0))
	defer func() {
		if recover() == nil {
			t.Error("duplicate Add should panic")
		}
	}()
	s.Add(1, NewDenseBlock(g, 0, 0))
}

func TestBlockSetCloneAndBytes(t *testing.T) {
	g := testGrid(t)
	s := NewBlockSet()
	s.Add(0, NewDenseBlock(g, 0, 0))
	s.Add(5, NewSparseBlock(g, 2, 1))
	c := s.Clone()
	c.Find(0).Dense.Set(0, 0, 9)
	if s.Find(0).Dense.At(0, 0) != 0 {
		t.Error("Clone shares storage")
	}
	if s.Bytes() != s.Find(0).Bytes()+s.Find(5).Bytes() {
		t.Error("Bytes wrong")
	}
}

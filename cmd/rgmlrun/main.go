// Command rgmlrun executes one benchmark application once under the
// resilient executor, optionally injecting place failures, and prints a
// run summary — a quick way to watch the framework recover.
//
// Usage:
//
//	rgmlrun -app pagerank -places 8 -mode shrink -kill-iter 15
//	rgmlrun -app linreg -places 4 -ckpt 2 -chaos "kill(point=commit,iter=4,place=1)"
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/rgml/rgml/internal/apgas"
	"github.com/rgml/rgml/internal/apps"
	"github.com/rgml/rgml/internal/chaos"
	"github.com/rgml/rgml/internal/core"
	"github.com/rgml/rgml/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rgmlrun:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		appName  = flag.String("app", "pagerank", "application: linreg, logreg, pagerank or gnmf")
		places   = flag.Int("places", 8, "number of active places")
		iters    = flag.Int("iters", 30, "iterations")
		ckpt     = flag.Int("ckpt", 10, "checkpoint interval (0 disables)")
		modeName = flag.String("mode", "shrink", "restore mode: shrink, shrink-rebalance, replace-redundant, replace-elastic")
		delta    = flag.Bool("delta", false, "delta checkpointing: re-encode and re-ship only entries changed since the committed checkpoint")
		finish   = flag.String("finish", "central", "resilient-finish architecture: central (place-zero ledger) or sharded (home-based shards with a local fast path)")
		placeStr = flag.String("placement", "", "snapshot store placement: replicate or erasure (default replicate)")
		redun    = flag.Int("redundancy", 0, "replica count k for the replicate placement (default 2; 1 disables backups)")
		shards   = flag.String("shards", "", "erasure geometry as d,p data/parity shards (default 4,1)")
		killIter = flag.Int("kill-iter", 0, "inject a failure after this iteration (0: none)")
		size     = flag.Int("size", 1000, "per-place problem size (examples or nodes)")
		seed     = flag.Uint64("seed", 42, "dataset seed")
		latency  = flag.Duration("latency", 0, "simulated per-message latency")
		workers  = flag.Int("workers", 0, "intra-place kernel worker pool size (0: RGML_WORKERS or CPU count)")
		metrics  = flag.String("metrics", "", "export the run's metrics registry: \"-\" for text on stdout, else a JSON file path")
		chaosStr = flag.String("chaos", "", "chaos schedule driving seed-reproducible fault injection, e.g. \"kill(point=commit,iter=4,place=1)\"")
		chaosSd  = flag.Uint64("chaos-seed", 1, "chaos engine seed")
		timeout  = flag.Duration("timeout", 0, "cancel the run after this long (0: no bound)")
	)
	flag.Parse()

	var mode core.RestoreMode
	switch *modeName {
	case "shrink":
		mode = core.Shrink
	case "shrink-rebalance":
		mode = core.ShrinkRebalance
	case "replace-redundant":
		mode = core.ReplaceRedundant
	case "replace-elastic":
		mode = core.ReplaceElastic
	default:
		return fmt.Errorf("unknown mode %q", *modeName)
	}
	spares := 0
	total := *places
	if mode == core.ReplaceRedundant {
		spares = 1
		total++
	}

	finishMode, err := apgas.ParseFinishMode(*finish)
	if err != nil {
		return err
	}
	pol, err := storePolicy(*placeStr, *redun, *shards)
	if err != nil {
		return err
	}

	// One registry collects runtime, snapshot and executor metrics so the
	// -metrics export is a single coherent document.
	reg := obs.NewRegistry()
	rt, err := apgas.New(
		apgas.WithPlaces(total),
		apgas.WithResilient(true),
		apgas.WithFinishMode(finishMode),
		apgas.WithStorePolicy(pol),
		apgas.WithNet(apgas.NetModel{Latency: *latency}),
		apgas.WithObs(reg),
		apgas.WithKernelWorkers(*workers),
	)
	if err != nil {
		return err
	}
	defer rt.Shutdown()

	killed := false
	victim := rt.Place(*places / 2)
	opts := []core.Option{
		core.WithCheckpointInterval(*ckpt),
		core.WithRestoreMode(mode),
		core.WithSpares(spares),
		core.WithDelta(*delta),
		core.WithObs(reg),
		core.WithAfterStep(func(iter int64) {
			if *killIter > 0 && !killed && iter == int64(*killIter) {
				killed = true
				fmt.Printf("iteration %d: killing %v\n", iter, victim)
				if err := rt.Kill(victim); err != nil {
					fmt.Fprintln(os.Stderr, "kill:", err)
				}
			}
		}),
	}
	var eng *chaos.Engine
	if *chaosStr != "" {
		sched, err := chaos.Parse(*chaosStr)
		if err != nil {
			return err
		}
		eng, err = chaos.New(rt, sched, chaos.WithSeed(*chaosSd))
		if err != nil {
			return err
		}
		opts = append(opts, core.WithChaos(eng))
	}
	exec, err := core.New(rt, opts...)
	if err != nil {
		return err
	}

	var app core.IterativeApp
	switch *appName {
	case "linreg":
		app, err = apps.NewLinReg(rt, apps.LinRegConfig{
			Examples: *size * *places, Features: 64, Iterations: *iters, Seed: *seed,
		}, exec.ActiveGroup())
	case "logreg":
		app, err = apps.NewLogReg(rt, apps.LogRegConfig{
			Examples: *size * *places, Features: 64, Iterations: *iters, Seed: *seed,
		}, exec.ActiveGroup())
	case "pagerank":
		app, err = apps.NewPageRank(rt, apps.PageRankConfig{
			Nodes: *size * *places, OutDegree: 16, Iterations: *iters, Seed: *seed,
		}, exec.ActiveGroup())
	case "gnmf":
		app, err = apps.NewGNMF(rt, apps.GNMFConfig{
			Rows: *size * *places, Cols: *size, NNZPerCol: 8, Rank: 8,
			Iterations: *iters, Seed: *seed,
		}, exec.ActiveGroup())
	default:
		return fmt.Errorf("unknown app %q", *appName)
	}
	if err != nil {
		return err
	}

	fmt.Printf("running %s: %d iterations on %d places (mode %v, checkpoint every %d)\n",
		*appName, *iters, *places, mode, *ckpt)
	if !pol.IsZero() {
		fmt.Printf("  store policy: %v\n", pol)
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	start := time.Now()
	if err := exec.RunContext(ctx, app); err != nil {
		return err
	}
	elapsed := time.Since(start)

	m := exec.Metrics()
	fmt.Printf("done in %v\n", elapsed.Round(time.Millisecond))
	if eng != nil {
		fmt.Printf("  chaos:        seed %d, %d kills [%s], %d transient faults\n",
			eng.Seed(), len(eng.Kills()), eng.Signature(), eng.Flakes())
	}
	fmt.Printf("  steps:        %d (%d replayed after rollback)\n", m.Steps, m.ReplayedSteps)
	fmt.Printf("  checkpoints:  %d (%v total)\n", m.Checkpoints, m.CheckpointTime.Round(time.Millisecond))
	fmt.Printf("  restores:     %d (%v total)\n", m.Restores, m.RestoreTime.Round(time.Millisecond))
	fmt.Printf("  final places: %v\n", exec.ActiveGroup())
	st := rt.Stats()
	fmt.Printf("  runtime:      %d tasks, %d messages, %d ledger events, %d places killed\n",
		st.TasksSpawned, st.Messages, st.LedgerEvents, st.PlacesKilled)
	if finishMode == apgas.FinishSharded {
		fmt.Printf("  finish:       sharded (%d local fast-path tasks, %d refused forks)\n",
			st.LocalTasks, st.RefusedForks)
	}
	return exportMetrics(reg, *metrics)
}

// storePolicy assembles the snapshot-store redundancy policy from the
// -placement/-redundancy/-shards flags. All unset keeps the zero policy —
// the store's paper-faithful default (replicate, k=2).
func storePolicy(placement string, redundancy int, shards string) (apgas.StorePolicy, error) {
	var sp apgas.StorePolicy
	if placement == "" && redundancy == 0 && shards == "" {
		return sp, nil
	}
	if placement != "" {
		p, err := apgas.ParsePlacement(placement)
		if err != nil {
			return sp, fmt.Errorf("-placement: %w", err)
		}
		sp.Placement = p
	} else if shards != "" {
		// -shards alone implies erasure.
		sp.Placement = apgas.PlacementErasure
	}
	if redundancy > 0 {
		if sp.Placement == apgas.PlacementErasure {
			return sp, fmt.Errorf("-redundancy applies to the replicate placement; size erasure with -shards d,p")
		}
		sp.Replicas = redundancy
	}
	if shards != "" {
		if sp.Placement != apgas.PlacementErasure {
			return sp, fmt.Errorf("-shards applies to the erasure placement (add -placement erasure)")
		}
		var d, p int
		if n, err := fmt.Sscanf(shards, "%d,%d", &d, &p); err != nil || n != 2 {
			return sp, fmt.Errorf("-shards: want d,p (e.g. 4,1), got %q", shards)
		}
		sp.DataShards, sp.ParityShards = d, p
	}
	if err := sp.Validate(); err != nil {
		return sp, err
	}
	return sp, nil
}

// exportMetrics writes the registry to dest: nothing for "", a text dump on
// stdout for "-", otherwise an indented JSON file.
func exportMetrics(reg *obs.Registry, dest string) error {
	switch dest {
	case "":
		return nil
	case "-":
		fmt.Println()
		return reg.WriteText(os.Stdout)
	default:
		f, err := os.Create(dest)
		if err != nil {
			return fmt.Errorf("metrics export: %w", err)
		}
		defer f.Close()
		if err := reg.WriteJSON(f); err != nil {
			return fmt.Errorf("metrics export: %w", err)
		}
		return nil
	}
}

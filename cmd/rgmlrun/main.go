// Command rgmlrun executes one benchmark application once under the
// resilient executor, optionally injecting place failures, and prints a
// run summary — a quick way to watch the framework recover.
//
// Usage:
//
//	rgmlrun -app pagerank -places 8 -mode shrink -kill-iter 15
//	rgmlrun -app linreg -places 4 -ckpt 2 -chaos "kill(point=commit,iter=4,place=1)"
//	rgmlrun -transport tcp -app pagerank -places 4 -ckpt 2 -kill-proc-iter 4
//
// With -transport tcp every place is a separate OS process; -kill-proc-iter
// kills a worker process outright (SIGKILL, no administrative shutdown) and
// lets the heartbeat failure detector discover the death. A worker can also
// be started explicitly with -serve-place for externally managed process
// groups.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/rgml/rgml/internal/apgas"
	"github.com/rgml/rgml/internal/apgas/transport/tcp"
	"github.com/rgml/rgml/internal/apps"
	"github.com/rgml/rgml/internal/chaos"
	"github.com/rgml/rgml/internal/cliflags"
	"github.com/rgml/rgml/internal/core"
	"github.com/rgml/rgml/internal/obs"
)

func main() {
	// Self-spawned tcp workers re-exec this binary with the worker
	// environment set; they serve their place and exit here.
	cliflags.MaybeWorker()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rgmlrun:", err)
		os.Exit(1)
	}
}

func run() error {
	var rf cliflags.Runtime
	rf.Register(flag.CommandLine)
	var (
		appName        = flag.String("app", "pagerank", "application: linreg, logreg, pagerank or gnmf")
		places         = flag.Int("places", 8, "number of active places")
		iters          = flag.Int("iters", 30, "iterations")
		ckpt           = flag.Int("ckpt", 10, "checkpoint interval (0 disables)")
		modeName       = flag.String("mode", "shrink", "restore mode: shrink, shrink-rebalance, replace-redundant, replace-elastic")
		delta          = flag.Bool("delta", false, "delta checkpointing: re-encode and re-ship only entries changed since the committed checkpoint")
		killIter       = flag.Int("kill-iter", 0, "inject an administrative failure after this iteration (0: none)")
		killProc       = flag.Int("kill-proc-iter", 0, "tcp only: SIGKILL a worker process after this iteration and let the failure detector find it (0: none)")
		minWorkerTasks = flag.Int("min-worker-tasks", 0, "tcp only: fail unless at least this many registered kernels executed inside worker processes (0: no assertion)")
		size           = flag.Int("size", 1000, "per-place problem size (examples or nodes)")
		seed           = flag.Uint64("seed", 42, "dataset seed")
		latency        = flag.Duration("latency", 0, "simulated per-message latency")
		metrics        = flag.String("metrics", "", "export the run's metrics registry: \"-\" for text on stdout, else a JSON file path")
		chaosStr       = flag.String("chaos", "", "chaos schedule driving seed-reproducible fault injection, e.g. \"kill(point=commit,iter=4,place=1)\"")
		chaosSd        = flag.Uint64("chaos-seed", 1, "chaos engine seed")
		timeout        = flag.Duration("timeout", 0, "cancel the run after this long (0: no bound)")

		servePlace = flag.Bool("serve-place", false, "run as an explicit tcp transport worker: join -join as place -place-id and block")
		joinAddr   = flag.String("join", "", "coordinator address for -serve-place")
		placeID    = flag.Int("place-id", -1, "place to serve for -serve-place")
	)
	flag.Parse()

	if *servePlace {
		if *joinAddr == "" || *placeID < 0 {
			return fmt.Errorf("-serve-place needs -join <addr> and -place-id <k>")
		}
		return tcp.ServeWorker(*joinAddr, *placeID, rf.HBInterval, rf.HBTimeout)
	}

	mode, err := cliflags.ParseRestoreMode(*modeName)
	if err != nil {
		return err
	}
	spares := 0
	total := *places
	if mode == core.ReplaceRedundant {
		spares = 1
		total++
	}

	finishMode, err := rf.FinishMode()
	if err != nil {
		return err
	}
	pol, err := rf.StorePolicy()
	if err != nil {
		return err
	}
	compSpec, err := rf.Compression()
	if err != nil {
		return err
	}

	// One registry collects runtime, snapshot and executor metrics so the
	// -metrics export is a single coherent document.
	reg := obs.NewRegistry()
	rtOpts := []apgas.Option{
		apgas.WithPlaces(total),
		apgas.WithResilient(true),
		apgas.WithFinishMode(finishMode),
		apgas.WithStorePolicy(pol),
		apgas.WithNet(apgas.NetModel{Latency: *latency}),
		apgas.WithObs(reg),
		apgas.WithKernelWorkers(rf.Workers),
	}
	if !compSpec.IsZero() {
		rtOpts = append(rtOpts, apgas.WithCompression(compSpec))
	}
	factory, err := rf.TransportFactory(reg)
	if err != nil {
		return err
	}
	var tcpTP *tcp.Transport
	if factory != nil {
		tp, err := factory()
		if err != nil {
			return err
		}
		tcpTP, _ = tp.(*tcp.Transport)
		rtOpts = append(rtOpts, apgas.WithTransport(tp))
	}
	if *killProc > 0 && tcpTP == nil {
		return fmt.Errorf("-kill-proc-iter needs -transport tcp (a process to kill)")
	}
	if *minWorkerTasks > 0 && tcpTP == nil {
		return fmt.Errorf("-min-worker-tasks needs -transport tcp (only a data-plane backend executes kernels in workers)")
	}
	rt, err := apgas.New(rtOpts...)
	if err != nil {
		return err
	}
	defer rt.Shutdown()

	killed := false
	victim := rt.Place(*places / 2)
	opts := []core.Option{
		core.WithCheckpointInterval(*ckpt),
		core.WithRestoreMode(mode),
		core.WithSpares(spares),
		core.WithDelta(*delta),
		core.WithObs(reg),
		core.WithAfterStep(func(iter int64) {
			if *killIter > 0 && !killed && iter == int64(*killIter) {
				killed = true
				fmt.Printf("iteration %d: killing %v\n", iter, victim)
				if err := rt.Kill(victim); err != nil {
					fmt.Fprintln(os.Stderr, "kill:", err)
				}
			}
			if *killProc > 0 && !killed && iter == int64(*killProc) {
				killed = true
				fmt.Printf("iteration %d: SIGKILLing the worker process of %v\n", iter, victim)
				if err := killWorkerAndAwaitDetection(rt, tcpTP, victim); err != nil {
					fmt.Fprintln(os.Stderr, "kill-proc:", err)
				}
			}
		}),
	}
	var eng *chaos.Engine
	if *chaosStr != "" {
		sched, err := chaos.Parse(*chaosStr)
		if err != nil {
			return err
		}
		eng, err = chaos.New(rt, sched, chaos.WithSeed(*chaosSd))
		if err != nil {
			return err
		}
		opts = append(opts, core.WithChaos(eng))
	}
	exec, err := core.New(rt, opts...)
	if err != nil {
		return err
	}

	var app core.IterativeApp
	switch *appName {
	case "linreg":
		app, err = apps.NewLinReg(rt, apps.LinRegConfig{
			Examples: *size * *places, Features: 64, Iterations: *iters, Seed: *seed,
		}, exec.ActiveGroup())
	case "logreg":
		app, err = apps.NewLogReg(rt, apps.LogRegConfig{
			Examples: *size * *places, Features: 64, Iterations: *iters, Seed: *seed,
		}, exec.ActiveGroup())
	case "pagerank":
		app, err = apps.NewPageRank(rt, apps.PageRankConfig{
			Nodes: *size * *places, OutDegree: 16, Iterations: *iters, Seed: *seed,
		}, exec.ActiveGroup())
	case "gnmf":
		app, err = apps.NewGNMF(rt, apps.GNMFConfig{
			Rows: *size * *places, Cols: *size, NNZPerCol: 8, Rank: 8,
			Iterations: *iters, Seed: *seed,
		}, exec.ActiveGroup())
	default:
		return fmt.Errorf("unknown app %q", *appName)
	}
	if err != nil {
		return err
	}

	fmt.Printf("running %s: %d iterations on %d places (transport %s, mode %v, checkpoint every %d)\n",
		*appName, *iters, *places, rt.TransportName(), mode, *ckpt)
	if !pol.IsZero() {
		fmt.Printf("  store policy: %v\n", pol)
	}
	if !compSpec.IsZero() {
		fmt.Printf("  compression:  %v\n", compSpec)
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	start := time.Now()
	if err := exec.RunContext(ctx, app); err != nil {
		return err
	}
	elapsed := time.Since(start)

	m := exec.Metrics()
	if *killProc > 0 && m.Restores == 0 {
		return fmt.Errorf("process kill at iteration %d caused no restore — detection never fired", *killProc)
	}
	if *minWorkerTasks > 0 {
		if got := rt.Stats().WorkerTasks; got < int64(*minWorkerTasks) {
			return fmt.Errorf("only %d kernels executed inside worker processes, want at least %d — the distributed data plane never engaged", got, *minWorkerTasks)
		}
	}
	fmt.Printf("done in %v\n", elapsed.Round(time.Millisecond))
	if eng != nil {
		fmt.Printf("  chaos:        seed %d, %d kills [%s], %d transient faults\n",
			eng.Seed(), len(eng.Kills()), eng.Signature(), eng.Flakes())
	}
	fmt.Printf("  steps:        %d (%d replayed after rollback)\n", m.Steps, m.ReplayedSteps)
	fmt.Printf("  checkpoints:  %d (%v total)\n", m.Checkpoints, m.CheckpointTime.Round(time.Millisecond))
	fmt.Printf("  restores:     %d (%v total)\n", m.Restores, m.RestoreTime.Round(time.Millisecond))
	if bytesIn := reg.Counter("snapshot.compress.bytes_in").Value(); bytesIn > 0 {
		bytesOut := reg.Counter("snapshot.compress.bytes_out").Value()
		fmt.Printf("  compression:  %d -> %d bytes (%.1f%%), %dµs encode\n",
			bytesIn, bytesOut, 100*float64(bytesOut)/float64(bytesIn),
			reg.Counter("snapshot.compress.time_us").Value())
		if femto := reg.Gauge("snapshot.lossy.max_err").Value(); femto > 0 {
			fmt.Printf("  lossy err:    max %.3g (bound %g)\n", float64(femto)*1e-15, compSpec.ErrorBound)
		}
	}
	fmt.Printf("  final places: %v\n", exec.ActiveGroup())
	st := rt.Stats()
	fmt.Printf("  runtime:      %d tasks, %d messages, %d ledger events, %d places killed, %d failed\n",
		st.TasksSpawned, st.Messages, st.LedgerEvents, st.PlacesKilled, st.PlacesFailed)
	if tcpTP != nil {
		fmt.Printf("  data plane:   %d kernels executed in workers (%d fell back to the coordinator)\n",
			st.WorkerTasks, reg.CounterValue("apgas.tasks.kernel_fallback"))
	}
	if finishMode == apgas.FinishSharded {
		fmt.Printf("  finish:       sharded (%d local fast-path tasks, %d refused forks)\n",
			st.LocalTasks, st.RefusedForks)
	}
	return exportMetrics(reg, *metrics)
}

// killWorkerAndAwaitDetection SIGKILLs the victim's worker process — no
// administrative mark, no shutdown handshake — and blocks until the
// heartbeat failure detector has declared the place dead, so the next
// step's DeadPlaceError is deterministic rather than racing detection.
func killWorkerAndAwaitDetection(rt *apgas.Runtime, tp *tcp.Transport, victim apgas.Place) error {
	if err := tp.KillWorkerProcess(victim.ID); err != nil {
		return err
	}
	deadline := time.Now().Add(10 * time.Second)
	for !rt.IsDead(victim) {
		if time.Now().After(deadline) {
			return fmt.Errorf("place %v not declared dead within 10s of its process dying", victim)
		}
		time.Sleep(time.Millisecond)
	}
	return nil
}

// exportMetrics writes the registry to dest: nothing for "", a text dump on
// stdout for "-", otherwise an indented JSON file.
func exportMetrics(reg *obs.Registry, dest string) error {
	switch dest {
	case "":
		return nil
	case "-":
		fmt.Println()
		return reg.WriteText(os.Stdout)
	default:
		f, err := os.Create(dest)
		if err != nil {
			return fmt.Errorf("metrics export: %w", err)
		}
		defer f.Close()
		if err := reg.WriteJSON(f); err != nil {
			return fmt.Errorf("metrics export: %w", err)
		}
		return nil
	}
}

// Command rgmlbench regenerates the tables and figures of the paper's
// evaluation (section VII). Each experiment writes an aligned text table
// to stdout and, with -out, to <out>/<id>.txt.
//
// Usage:
//
//	rgmlbench [flags] <experiment>...
//	rgmlbench all
//	rgmlbench -chaos "kill(point=commit,iter=10,place=1)" -seeds 1,2,3 chaos
//
// Experiments: table2, fig2, fig3, fig4, table3, fig5, fig6, fig7, table4,
// ablations, delta — a full-vs-delta checkpointing comparison emitting the
// BENCH_delta.json document — finish — a central-vs-sharded resilient-finish
// architecture comparison emitting the BENCH_finish.json document — store —
// a redundancy-policy comparison (replication factor vs Reed-Solomon
// erasure coding: storage overhead, reconstruction throughput, and a
// correlated double-kill survival matrix) emitting the BENCH_store.json
// document — compress — a checkpoint-compression sweep (codec ×
// error-bound: shipped bytes, save/restore time, iterations-to-converge)
// emitting the BENCH_compress.json document — and chaos — a
// fault-injection campaign that sweeps the -seeds list over the -chaos
// schedule for each benchmark application and emits a per-campaign
// survival/recovery JSON report.
//
// The -placement/-redundancy/-shards flags set the snapshot store's
// redundancy policy for every resilient run (the store experiment sweeps
// its own policies and ignores them). -transport tcp runs every place as
// a separate OS process (heavy: each runtime spawns a process group).
//
// The workload sizes default to laptop scale (see -scale and the
// per-workload flags); EXPERIMENTS.md records how they map to the paper's
// cluster-scale parameters.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"

	"github.com/rgml/rgml/internal/bench"
	"github.com/rgml/rgml/internal/cliflags"
	"github.com/rgml/rgml/internal/par"
)

func main() {
	// Self-spawned tcp workers re-exec this binary with the worker
	// environment set; they serve their place and exit here.
	cliflags.MaybeWorker()
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rgmlbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("rgmlbench", flag.ContinueOnError)
	var rf cliflags.Runtime
	rf.Register(fs)
	var (
		outDir     = fs.String("out", "", "directory for result files (empty: stdout only)")
		placesCSV  = fs.String("places", "", "comma-separated place counts (default 2,4,8,...,44)")
		iters      = fs.Int("iters", 0, "iterations per run (default 30)")
		runs       = fs.Int("runs", 0, "runs to average (default 3)")
		ckpt       = fs.Int("ckpt", 0, "checkpoint interval (default 10)")
		failIter   = fs.Int("fail-iter", 0, "failure iteration for fig5-7 (default 15)")
		scale      = fs.Float64("scale", 1, "multiplier on the per-place workload sizes")
		latency    = fs.Duration("latency", 0, "simulated per-message latency (sleep-based; leave 0 on hosts with coarse timers)")
		bytePeriod = fs.Duration("byte-period", 0, "simulated per-byte transfer time")
		ledgerWork = fs.Int("ledger-work", bench.DefaultConfig().LedgerWork, "resilient-finish ledger work units per event")
		metricsDir = fs.String("metrics", "", "directory for per-restore-run JSON metrics exports (empty: none)")
		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile covering all experiments to this file")
		memProfile = fs.String("memprofile", "", "write an allocation profile after all experiments to this file")
		quiet      = fs.Bool("q", false, "suppress progress output")

		chaosSched  = fs.String("chaos", "", "chaos schedule for the chaos experiment (default: one random kill at the failure iteration)")
		seedsCSV    = fs.String("seeds", "1,2,3", "comma-separated chaos engine seeds to sweep")
		chaosPlaces = fs.Int("chaos-places", 4, "active places per chaos run")
		chaosMode   = fs.String("chaos-mode", "shrink", "restore mode for chaos runs: shrink, shrink-rebalance, replace-redundant, replace-elastic")
		chaosSpares = fs.Int("chaos-spares", 0, "spare places reserved per chaos run")
		chaosStrict = fs.Bool("chaos-strict", false, "exit non-zero when any chaos run fails to survive or verify")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return fmt.Errorf("no experiments given (try: rgmlbench all)")
	}
	if rf.Workers > 0 {
		par.SetWorkers(rf.Workers)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "rgmlbench: -memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "rgmlbench: -memprofile:", err)
			}
		}()
	}

	cfg := bench.DefaultConfig()
	cfg.Latency = *latency
	cfg.BytePeriod = *bytePeriod
	cfg.LedgerWork = *ledgerWork
	cfg.MetricsDir = *metricsDir
	mode, err := rf.FinishMode()
	if err != nil {
		return err
	}
	cfg.FinishMode = mode
	pol, err := rf.StorePolicy()
	if err != nil {
		return err
	}
	cfg.Store = pol
	spec, err := rf.Compression()
	if err != nil {
		return err
	}
	cfg.Compress = spec
	factory, err := rf.TransportFactory(nil)
	if err != nil {
		return err
	}
	cfg.Transport = factory
	cfg.TransportName = rf.Transport
	if !*quiet {
		cfg.Progress = os.Stderr
	}
	s := &cfg.Scale
	if *placesCSV != "" {
		counts, err := cliflags.ParseInts(*placesCSV)
		if err != nil {
			return fmt.Errorf("-places: %w", err)
		}
		s.PlaceCounts = counts
	}
	if *iters > 0 {
		s.Iterations = *iters
	}
	if *runs > 0 {
		s.Runs = *runs
	}
	if *ckpt > 0 {
		s.CheckpointInterval = *ckpt
	}
	if *failIter > 0 {
		s.FailureIteration = *failIter
	}
	if *scale != 1 {
		s.LinRegExamplesPerPlace = int(float64(s.LinRegExamplesPerPlace) * *scale)
		s.LogRegExamplesPerPlace = int(float64(s.LogRegExamplesPerPlace) * *scale)
		s.PageRankNodesPerPlace = int(float64(s.PageRankNodesPerPlace) * *scale)
	}

	experiments := fs.Args()
	if len(experiments) == 1 && experiments[0] == "all" {
		experiments = []string{"table2", "fig2", "fig3", "fig4", "table3", "fig5", "fig6", "fig7", "table4", "ablations"}
	}
	for _, exp := range experiments {
		if exp == "chaos" {
			co := chaosOptions{
				schedule: *chaosSched,
				seedsCSV: *seedsCSV,
				places:   *chaosPlaces,
				mode:     *chaosMode,
				spares:   *chaosSpares,
				strict:   *chaosStrict,
			}
			if err := runChaosCampaigns(cfg, co, *outDir); err != nil {
				return fmt.Errorf("chaos: %w", err)
			}
			continue
		}
		if err := runExperiment(cfg, exp, *outDir); err != nil {
			return fmt.Errorf("%s: %w", exp, err)
		}
	}
	return nil
}

// chaosOptions carries the chaos experiment's flag values.
type chaosOptions struct {
	schedule string
	seedsCSV string
	places   int
	mode     string
	spares   int
	strict   bool
}

// runChaosCampaigns sweeps the seed list over the schedule for every
// benchmark application, writing one JSON report per campaign to stdout
// and, with -out, to <out>/chaos_<app>.json.
func runChaosCampaigns(cfg bench.Config, co chaosOptions, outDir string) error {
	mode, err := cliflags.ParseRestoreMode(co.mode)
	if err != nil {
		return err
	}
	seeds, err := cliflags.ParseSeeds(co.seedsCSV)
	if err != nil {
		return fmt.Errorf("-seeds: %w", err)
	}
	schedule := co.schedule
	if schedule == "" {
		// Default: one random-victim kill at the evaluation's canonical
		// failure iteration — any single failure is survivable under
		// double in-memory storage.
		schedule = fmt.Sprintf("kill(iter=%d)", cfg.Scale.FailureIteration)
	}
	failed := false
	for _, app := range bench.Apps {
		rep, err := cfg.ChaosCampaign(bench.ChaosSpec{
			App:      app,
			Places:   co.places,
			Schedule: schedule,
			Seeds:    seeds,
			Mode:     mode,
			Spares:   co.spares,
		})
		if err != nil {
			return err
		}
		if rep.Failed() {
			failed = true
		}
		writers := []io.Writer{os.Stdout}
		if outDir != "" {
			if err := os.MkdirAll(outDir, 0o755); err != nil {
				return err
			}
			f, err := os.Create(filepath.Join(outDir, fmt.Sprintf("chaos_%s.json", app)))
			if err != nil {
				return err
			}
			writers = append(writers, f)
			defer f.Close()
		}
		if err := bench.WriteChaosReport(io.MultiWriter(writers...), rep); err != nil {
			return err
		}
	}
	if failed && co.strict {
		return fmt.Errorf("at least one run did not survive or verify")
	}
	return nil
}

// output tees an experiment's rendering to stdout and the result file.
func output(outDir, id string, render func(w io.Writer) error) error {
	writers := []io.Writer{os.Stdout}
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
		f, err := os.Create(filepath.Join(outDir, id+".txt"))
		if err != nil {
			return err
		}
		defer f.Close()
		writers = append(writers, f)
	}
	if err := render(io.MultiWriter(writers...)); err != nil {
		return err
	}
	fmt.Println()
	return nil
}

func runExperiment(cfg bench.Config, exp, outDir string) error {
	figApp := map[string]bench.AppName{
		"fig2": bench.LinReg, "fig3": bench.LogReg, "fig4": bench.PageRank,
		"fig5": bench.LinReg, "fig6": bench.LogReg, "fig7": bench.PageRank,
	}
	switch exp {
	case "table2":
		rows, err := bench.LOCTable()
		if err != nil {
			return err
		}
		return output(outDir, "table2", func(w io.Writer) error {
			return bench.WriteLOCTable(w, rows)
		})
	case "fig2", "fig3", "fig4":
		fig, err := cfg.FinishOverheadFigure(figApp[exp])
		if err != nil {
			return err
		}
		return output(outDir, exp, func(w io.Writer) error {
			if err := bench.WriteFigure(w, fig); err != nil {
				return err
			}
			fmt.Fprintln(w)
			return bench.WriteFigureChart(w, fig)
		})
	case "table3":
		rows, err := cfg.CheckpointTable()
		if err != nil {
			return err
		}
		return output(outDir, "table3", func(w io.Writer) error {
			return bench.WriteCheckpointTable(w, rows)
		})
	case "fig5", "fig6", "fig7":
		fig, _, err := cfg.RestoreFigure(figApp[exp])
		if err != nil {
			return err
		}
		return output(outDir, exp, func(w io.Writer) error {
			if err := bench.WriteFigure(w, fig); err != nil {
				return err
			}
			fmt.Fprintln(w)
			return bench.WriteFigureChart(w, fig)
		})
	case "table4":
		rows, err := cfg.PercentTable()
		if err != nil {
			return err
		}
		places := cfg.Scale.PlaceCounts[len(cfg.Scale.PlaceCounts)-1]
		return output(outDir, "table4", func(w io.Writer) error {
			return bench.WritePercentTable(w, rows, places)
		})
	case "ablations":
		rows, err := cfg.Ablations()
		if err != nil {
			return err
		}
		return output(outDir, "ablations", func(w io.Writer) error {
			return bench.WriteAblations(w, rows)
		})
	case "delta":
		rows, err := cfg.DeltaSweep()
		if err != nil {
			return err
		}
		return output(outDir, "delta", func(w io.Writer) error {
			return bench.WriteDeltaReport(w, cfg, rows)
		})
	case "finish":
		rep, err := cfg.FinishBench()
		if err != nil {
			return err
		}
		return output(outDir, "finish", func(w io.Writer) error {
			return bench.WriteFinishReport(w, rep)
		})
	case "store":
		rep, err := cfg.StoreBench()
		if err != nil {
			return err
		}
		return output(outDir, "store", func(w io.Writer) error {
			return bench.WriteStoreReport(w, rep)
		})
	case "compress":
		rows, err := cfg.CompressSweep()
		if err != nil {
			return err
		}
		return output(outDir, "compress", func(w io.Writer) error {
			return bench.WriteCompressReport(w, cfg, rows)
		})
	default:
		return fmt.Errorf("unknown experiment (want table2, fig2-7, table3, table4, ablations, delta, finish, store, compress, all)")
	}
}

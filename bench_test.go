// Benchmarks regenerating the paper's evaluation artifacts in testing.B
// form, one benchmark family per table and figure, plus the ablations
// listed in DESIGN.md section 9. The cmd/rgmlbench harness produces the
// full weak-scaling sweeps; these benches keep workloads small so
// `go test -bench=.` finishes quickly while preserving the comparisons
// (resilient vs non-resilient, mode vs mode, with vs without an
// optimization).
package rgml_test

import (
	"fmt"
	"testing"

	"github.com/rgml/rgml/internal/apgas"
	"github.com/rgml/rgml/internal/apps"
	"github.com/rgml/rgml/internal/bench"
	"github.com/rgml/rgml/internal/block"
	"github.com/rgml/rgml/internal/core"
	"github.com/rgml/rgml/internal/dist"
	"github.com/rgml/rgml/internal/snapshot"
)

// --- Table II -------------------------------------------------------------

func BenchmarkTable2LOC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.LOCTable()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 3 {
			b.Fatal("wrong row count")
		}
	}
}

// --- Figures 2-4: resilient finish overhead -------------------------------

// stepBench measures one application iteration under resilient vs
// non-resilient finish (the per-point measurement of Figures 2-4).
func stepBench(b *testing.B, app bench.AppName, places int, resilient bool) {
	rt, err := apgas.New(apgas.WithPlaces(places), apgas.WithResilient(resilient))
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Shutdown()
	const perPlace = 200
	var stepper interface{ Step() error }
	switch app {
	case bench.LinReg:
		a, err := apps.NewLinRegNonResilient(rt, apps.LinRegConfig{
			Examples: perPlace * places, Features: 32, Iterations: 1 << 30, Seed: 1,
		}, rt.World())
		if err != nil {
			b.Fatal(err)
		}
		stepper = a
	case bench.LogReg:
		a, err := apps.NewLogRegNonResilient(rt, apps.LogRegConfig{
			Examples: perPlace * places, Features: 32, Iterations: 1 << 30, Seed: 1,
		}, rt.World())
		if err != nil {
			b.Fatal(err)
		}
		stepper = a
	case bench.PageRank:
		a, err := apps.NewPageRankNonResilient(rt, apps.PageRankConfig{
			Nodes: perPlace * places, OutDegree: 8, Iterations: 1 << 30, Seed: 1,
		}, rt.World())
		if err != nil {
			b.Fatal(err)
		}
		stepper = a
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := stepper.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

func finishOverheadBench(b *testing.B, app bench.AppName) {
	for _, places := range []int{2, 8} {
		for _, resilient := range []bool{false, true} {
			name := fmt.Sprintf("places=%d/resilient=%v", places, resilient)
			b.Run(name, func(b *testing.B) { stepBench(b, app, places, resilient) })
		}
	}
}

func BenchmarkFig2LinRegFinish(b *testing.B)   { finishOverheadBench(b, bench.LinReg) }
func BenchmarkFig3LogRegFinish(b *testing.B)   { finishOverheadBench(b, bench.LogReg) }
func BenchmarkFig4PageRankFinish(b *testing.B) { finishOverheadBench(b, bench.PageRank) }

// --- Table III: checkpoint cost -------------------------------------------

func BenchmarkTable3Checkpoint(b *testing.B) {
	const places = 8
	for _, appName := range bench.Apps {
		b.Run(string(appName), func(b *testing.B) {
			rt := benchRT(b, places, true)
			app := makeResilientApp(b, rt, appName, places, 1<<30)
			store := core.NewAppResilientStore()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				store.SetIteration(int64(i))
				if err := app.Checkpoint(store); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Figures 5-7: restore modes --------------------------------------------

func restoreBench(b *testing.B, appName bench.AppName) {
	for _, mode := range []core.RestoreMode{core.Shrink, core.ShrinkRebalance, core.ReplaceRedundant, core.ReplaceElastic} {
		b.Run(mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runWithFailure(b, appName, mode)
			}
		})
	}
}

func BenchmarkFig5LinRegRestore(b *testing.B)   { restoreBench(b, bench.LinReg) }
func BenchmarkFig6LogRegRestore(b *testing.B)   { restoreBench(b, bench.LogReg) }
func BenchmarkFig7PageRankRestore(b *testing.B) { restoreBench(b, bench.PageRank) }

// --- Table IV: checkpoint/restore share ------------------------------------

func BenchmarkTable4Percentages(b *testing.B) {
	cfg := bench.Config{Scale: bench.SmokeScale()}
	var rows []bench.PercentRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = cfg.PercentTable()
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(rows) == 3 {
		// Surface the shrink-rebalance restore share of the last run as a
		// custom metric (the paper's headline Table IV comparison).
		b.ReportMetric(rows[0].Pct["shrink-rebalance"][1], "rebalanceR%")
	}
}

// --- Ablations (DESIGN.md section 9) ----------------------------------------

// BenchmarkAblationLedgerCost isolates the resilient-finish ledger's
// serialized processing cost: identical fan-outs with and without ledger
// busy work, against the non-resilient baseline.
func BenchmarkAblationLedgerCost(b *testing.B) {
	fanout := func(b *testing.B, rt *apgas.Runtime) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			if err := apgas.ForEachPlace(rt, rt.World(), func(*apgas.Ctx, int) {}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("non-resilient", func(b *testing.B) {
		rt := benchRT(b, 8, false)
		b.ResetTimer()
		fanout(b, rt)
	})
	b.Run("resilient/ledger-free", func(b *testing.B) {
		rt := benchRT(b, 8, true)
		b.ResetTimer()
		fanout(b, rt)
	})
	b.Run("resilient/ledger-work", func(b *testing.B) {
		cost := bench.Config{LedgerWork: 400}
		rt, err := apgas.New(
			apgas.WithPlaces(8),
			apgas.WithResilient(true),
			apgas.WithLedgerCost(cost.LedgerCostFunc()),
		)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(rt.Shutdown)
		b.ResetTimer()
		fanout(b, rt)
	})
}

// BenchmarkAblationBackupCopy measures the price of the snapshot's second
// (next-place) copy — the double in-memory storage of section IV-B.
func BenchmarkAblationBackupCopy(b *testing.B) {
	for _, backup := range []bool{true, false} {
		name := "double-storage"
		if !backup {
			name = "local-only"
		}
		b.Run(name, func(b *testing.B) {
			rt := benchRT(b, 8, true)
			pg := rt.World()
			v, err := dist.MakeDistVector(rt, 8*2000, pg)
			if err != nil {
				b.Fatal(err)
			}
			if err := v.Init(func(i int) float64 { return float64(i) }); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s, err := snapshotDistVector(rt, v, pg, backup)
				if err != nil {
					b.Fatal(err)
				}
				s.Destroy()
			}
		})
	}
}

// snapshotDistVector saves every segment of v into a fresh snapshot with
// or without the backup copy.
func snapshotDistVector(rt *apgas.Runtime, v *dist.DistVector, pg apgas.PlaceGroup, backup bool) (*snapshot.Snapshot, error) {
	s, err := snapshot.NewWithOptions(rt, pg, snapshot.Options{DisableBackup: !backup})
	if err != nil {
		return nil, err
	}
	err = apgas.ForEachPlace(rt, pg, func(ctx *apgas.Ctx, idx int) {
		seg := v.Local(ctx)
		buf := make([]byte, 8*len(seg))
		s.Save(ctx, idx, buf)
	})
	if err != nil {
		s.Destroy()
		return nil, err
	}
	return s, nil
}

// BenchmarkAblationReadOnly compares checkpointing the big input matrix
// with Save (re-serialized every checkpoint) vs SaveReadOnly (serialized
// once) — why Table III stays flat across checkpoints.
func BenchmarkAblationReadOnly(b *testing.B) {
	for _, readOnly := range []bool{true, false} {
		name := "saveReadOnly"
		if !readOnly {
			name = "save"
		}
		b.Run(name, func(b *testing.B) {
			rt := benchRT(b, 4, true)
			pg := rt.World()
			m, err := dist.MakeDistBlockMatrix(rt, block.Dense, 2000, 64, 4, 1, 4, 1, pg)
			if err != nil {
				b.Fatal(err)
			}
			if err := m.InitDense(func(i, j int) float64 { return float64(i ^ j) }); err != nil {
				b.Fatal(err)
			}
			store := core.NewAppResilientStore()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := store.StartNewSnapshot(); err != nil {
					b.Fatal(err)
				}
				if readOnly {
					err = store.SaveReadOnly(m)
				} else {
					err = store.Save(m)
				}
				if err != nil {
					b.Fatal(err)
				}
				if err := store.Commit(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationRegridSparse compares the block-by-block restore (same
// grid) with the re-grid overlap restore, which must additionally count
// nonzeros before allocating (section IV-B2).
func BenchmarkAblationRegridSparse(b *testing.B) {
	for _, regrid := range []bool{false, true} {
		name := "same-grid"
		if regrid {
			name = "re-grid"
		}
		b.Run(name, func(b *testing.B) {
			rt := benchRT(b, 8, true)
			pg := rt.World()
			n := 4000
			m, err := dist.MakeDistBlockMatrix(rt, block.Sparse, n, n, 8, 1, 8, 1, pg)
			if err != nil {
				b.Fatal(err)
			}
			link := apps.LinkData{Seed: 3, Nodes: n, OutDegree: 8}
			if err := m.InitSparseColumns(link.Column); err != nil {
				b.Fatal(err)
			}
			s, err := m.MakeSnapshot()
			if err != nil {
				b.Fatal(err)
			}
			defer s.Destroy()
			if err := rt.Kill(rt.Place(5)); err != nil {
				b.Fatal(err)
			}
			if err := m.Remake(rt.World(), !regrid); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := m.RestoreSnapshot(s); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- shared helpers ---------------------------------------------------------

func benchRT(b *testing.B, places int, resilient bool) *apgas.Runtime {
	b.Helper()
	rt, err := apgas.New(apgas.WithPlaces(places), apgas.WithResilient(resilient))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(rt.Shutdown)
	return rt
}

// makeResilientApp builds a small resilient app with effectively unbounded
// iterations for per-operation benchmarks.
func makeResilientApp(b *testing.B, rt *apgas.Runtime, appName bench.AppName, places int, iters int) core.IterativeApp {
	b.Helper()
	const perPlace = 200
	var (
		app core.IterativeApp
		err error
	)
	switch appName {
	case bench.LinReg:
		app, err = apps.NewLinReg(rt, apps.LinRegConfig{
			Examples: perPlace * places, Features: 32, Iterations: iters, Seed: 1,
		}, rt.World())
	case bench.LogReg:
		app, err = apps.NewLogReg(rt, apps.LogRegConfig{
			Examples: perPlace * places, Features: 32, Iterations: iters, Seed: 1,
		}, rt.World())
	case bench.PageRank:
		app, err = apps.NewPageRank(rt, apps.PageRankConfig{
			Nodes: perPlace * places, OutDegree: 8, Iterations: iters, Seed: 1,
		}, rt.World())
	}
	if err != nil {
		b.Fatal(err)
	}
	return app
}

// runWithFailure executes one small failure-and-recovery run (the
// per-point measurement of Figures 5-7).
func runWithFailure(b *testing.B, appName bench.AppName, mode core.RestoreMode) {
	b.Helper()
	const places = 6
	total, spares := places, 0
	if mode == core.ReplaceRedundant {
		total, spares = places+1, 1
	}
	rt, err := apgas.New(apgas.WithPlaces(total), apgas.WithResilient(true))
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Shutdown()
	killed := false
	exec, err := core.New(rt,
		core.WithCheckpointInterval(4),
		core.WithRestoreMode(mode),
		core.WithSpares(spares),
		core.WithAfterStep(func(iter int64) {
			if !killed && iter == 6 {
				killed = true
				_ = rt.Kill(rt.Place(places / 2))
			}
		}),
	)
	if err != nil {
		b.Fatal(err)
	}
	app := makeResilientAppOn(b, rt, exec.ActiveGroup(), appName, places, 12)
	if err := exec.Run(app); err != nil {
		b.Fatal(err)
	}
	if exec.Metrics().Restores == 0 {
		b.Fatal("no restore happened")
	}
}

// makeResilientAppOn is makeResilientApp over an explicit group.
func makeResilientAppOn(b *testing.B, rt *apgas.Runtime, pg apgas.PlaceGroup, appName bench.AppName, places, iters int) core.IterativeApp {
	b.Helper()
	const perPlace = 200
	var (
		app core.IterativeApp
		err error
	)
	switch appName {
	case bench.LinReg:
		app, err = apps.NewLinReg(rt, apps.LinRegConfig{
			Examples: perPlace * places, Features: 32, Iterations: iters, Seed: 1,
		}, pg)
	case bench.LogReg:
		app, err = apps.NewLogReg(rt, apps.LogRegConfig{
			Examples: perPlace * places, Features: 32, Iterations: iters, Seed: 1,
		}, pg)
	case bench.PageRank:
		app, err = apps.NewPageRank(rt, apps.PageRankConfig{
			Nodes: perPlace * places, OutDegree: 8, Iterations: iters, Seed: 1,
		}, pg)
	}
	if err != nil {
		b.Fatal(err)
	}
	return app
}

// Non-negative matrix factorization under checkpoint/restart — a fourth
// GML-style application on top of the framework, exercising the
// distributed matrix-matrix operations (WᵀV reductions, V·Hᵀ local
// products, element-wise multiplicative updates). A place dies mid-run;
// the factorization rolls back, recovers, and the objective keeps
// decreasing monotonically as Lee-Seung updates must.
package main

import (
	"fmt"
	"log"

	"github.com/rgml/rgml"
)

func main() {
	const places = 6
	rt, err := rgml.NewRuntimeWith(rgml.WithPlaces(places), rgml.WithResilient(true))
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Shutdown()

	killed := false
	exec, err := rgml.NewExecutorWith(rt,
		rgml.WithCheckpointInterval(5),
		rgml.WithRestoreMode(rgml.Shrink),
		rgml.WithAfterStep(func(iter int64) {
			if !killed && iter == 8 {
				killed = true
				victim := rt.Place(3)
				fmt.Printf("iteration %d: killing %v\n", iter, victim)
				if err := rt.Kill(victim); err != nil {
					log.Fatal(err)
				}
			}
		}),
	)
	if err != nil {
		log.Fatal(err)
	}

	app, err := rgml.NewGNMF(rt, rgml.GNMFConfig{
		Rows: 1200, Cols: 300, NNZPerCol: 12, Rank: 8,
		Iterations: 20, Seed: 7,
	}, exec.ActiveGroup())
	if err != nil {
		log.Fatal(err)
	}

	before, err := app.Objective()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial ‖V−WH‖² = %.2f\n", before)

	if err := exec.Run(app); err != nil {
		log.Fatal(err)
	}
	after, err := app.Objective()
	if err != nil {
		log.Fatal(err)
	}
	m := exec.Metrics()
	fmt.Printf("final   ‖V−WH‖² = %.2f  (%.1f%% of initial)\n", after, 100*after/before)
	fmt.Printf("recovered from %d failure(s), %d iterations replayed, finished on %v\n",
		m.Restores, m.ReplayedSteps, exec.ActiveGroup())
	if after >= before {
		log.Fatal("objective did not decrease")
	}
}

// Logistic regression under the replace-elastic restoration mode — the
// paper's future-work fourth mode, built on dynamic place creation
// (Elastic X10): instead of reserving spares up front, a brand-new place
// is created to take each failed place's position.
package main

import (
	"fmt"
	"log"

	"github.com/rgml/rgml"
)

func main() {
	const (
		places   = 6
		examples = 3000
		features = 32
		iters    = 25
	)
	rt, err := rgml.NewRuntimeWith(rgml.WithPlaces(places), rgml.WithResilient(true))
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Shutdown()

	killed := 0
	exec, err := rgml.NewExecutorWith(rt,
		rgml.WithCheckpointInterval(5),
		rgml.WithRestoreMode(rgml.ReplaceElastic),
		rgml.WithAfterStep(func(iter int64) {
			// Two separate failures: both victims are replaced by places
			// created on the fly.
			if (iter == 8 && killed == 0) || (iter == 17 && killed == 1) {
				victim := rt.Place(1 + killed*2)
				killed++
				fmt.Printf("iteration %d: killing %v\n", iter, victim)
				if err := rt.Kill(victim); err != nil {
					log.Fatal(err)
				}
			}
		}),
	)
	if err != nil {
		log.Fatal(err)
	}

	app, err := rgml.NewLogReg(rt, rgml.LogRegConfig{
		Examples: examples, Features: features, Iterations: iters, Seed: 99,
	}, exec.ActiveGroup())
	if err != nil {
		log.Fatal(err)
	}
	if err := exec.Run(app); err != nil {
		log.Fatal(err)
	}

	m := exec.Metrics()
	st := rt.Stats()
	fmt.Printf("finished on %v\n", exec.ActiveGroup())
	fmt.Printf("failures: %d, elastic places created: %d, restores: %d\n",
		st.PlacesKilled, st.PlacesAdded, m.Restores)
	fmt.Printf("final training loss: %.4f\n", app.Loss())
}

// Chaos schedules: declarative, seed-reproducible fault injection. A
// schedule kills one place inside a checkpoint commit and flakes the next
// two snapshot replica writes; the run retries the replicas, recovers from
// the kill, and reproduces the failure-free weights. Running this program
// twice prints the same kill signature both times — that determinism is
// the point.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"github.com/rgml/rgml"
)

func main() {
	cfg := rgml.LinRegConfig{
		Examples: 2000, Features: 32, Iterations: 20, Seed: 7,
	}

	// Failure-free reference run.
	want := run(cfg, "", 0)

	// The same training run under a chaos schedule: place 1 dies inside
	// the commit of the iteration-10 checkpoint (one of the historically
	// fragile windows), and the first two replica writes afterwards fail
	// transiently, exercising the bounded-retry path.
	got := run(cfg, "kill(point=commit,iter=10,place=1);flake(times=2)", 1)

	if !got.EqualApprox(want, 1e-12) {
		log.Fatal("chaos run diverged from the failure-free run")
	}
	fmt.Println("chaos run reproduced the failure-free weights")
}

// run trains once, under the given chaos schedule (empty: none) and seed,
// and returns the final weights.
func run(cfg rgml.LinRegConfig, schedule string, seed uint64) rgml.Vector {
	rt, err := rgml.NewRuntimeWith(rgml.WithPlaces(4), rgml.WithResilient(true))
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Shutdown()

	opts := []rgml.ExecutorOption{
		rgml.WithCheckpointInterval(5),
		rgml.WithRestoreMode(rgml.Shrink),
	}
	var eng *rgml.ChaosEngine
	if schedule != "" {
		sched, err := rgml.ParseChaosSchedule(schedule)
		if err != nil {
			log.Fatal(err)
		}
		eng, err = rgml.NewChaosEngine(rt, sched, rgml.WithChaosSeed(seed))
		if err != nil {
			log.Fatal(err)
		}
		opts = append(opts, rgml.WithChaos(eng))
	}
	exec, err := rgml.NewExecutorWith(rt, opts...)
	if err != nil {
		log.Fatal(err)
	}
	app, err := rgml.NewLinReg(rt, cfg, exec.ActiveGroup())
	if err != nil {
		log.Fatal(err)
	}

	// A context bounds the run; a hung recovery would surface as
	// rgml.ErrCanceled instead of a stuck process.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := exec.RunContext(ctx, app); err != nil {
		log.Fatal(err)
	}

	if eng != nil {
		m := exec.Metrics()
		fmt.Printf("seed %d: kills [%s], %d transient faults, %d restore(s), %d iterations replayed\n",
			eng.Seed(), eng.Signature(), eng.Flakes(), m.Restores, m.ReplayedSteps)
	}
	w, err := app.Weights()
	if err != nil {
		log.Fatal(err)
	}
	return append(rgml.Vector(nil), w...)
}

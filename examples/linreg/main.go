// Linear regression with a hot spare: the replace-redundant restoration
// mode (paper section V-B3). One extra place is reserved at start; when an
// active place dies, the spare takes its position in the group, the data
// distribution stays unchanged, and training continues at full width.
package main

import (
	"fmt"
	"log"

	"github.com/rgml/rgml"
)

func main() {
	const (
		activePlaces = 6
		spares       = 1
		examples     = 3000
		features     = 32
		iters        = 25
	)
	rt, err := rgml.NewRuntimeWith(
		rgml.WithPlaces(activePlaces+spares),
		rgml.WithResilient(true),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Shutdown()

	killed := false
	exec, err := rgml.NewExecutorWith(rt,
		rgml.WithCheckpointInterval(5),
		rgml.WithRestoreMode(rgml.ReplaceRedundant),
		rgml.WithSpares(spares),
		rgml.WithAfterStep(func(iter int64) {
			if !killed && iter == 12 {
				killed = true
				victim := rt.Place(3)
				fmt.Printf("iteration %d: killing %v\n", iter, victim)
				if err := rt.Kill(victim); err != nil {
					log.Fatal(err)
				}
			}
		}),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("active: %v  (1 spare reserved)\n", exec.ActiveGroup())

	app, err := rgml.NewLinReg(rt, rgml.LinRegConfig{
		Examples: examples, Features: features, Iterations: iters, Seed: 7,
	}, exec.ActiveGroup())
	if err != nil {
		log.Fatal(err)
	}
	if err := exec.Run(app); err != nil {
		log.Fatal(err)
	}

	m := exec.Metrics()
	fmt.Printf("finished on %v — group size unchanged, no rebalancing needed\n", exec.ActiveGroup())
	fmt.Printf("restores: %d, iterations replayed: %d\n", m.Restores, m.ReplayedSteps)

	w, err := app.Weights()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("first trained weights:", w[:4])
}

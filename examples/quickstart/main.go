// Quickstart: build distributed GML objects, take a snapshot, kill a
// place, and restore onto the survivors — the paper's section IV machinery
// in ~80 lines.
package main

import (
	"fmt"
	"log"

	"github.com/rgml/rgml"
)

func main() {
	// An emulated APGAS runtime with 4 places and resilient finish.
	rt, err := rgml.NewRuntimeWith(rgml.WithPlaces(4), rgml.WithResilient(true))
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Shutdown()
	world := rt.World()
	fmt.Println("world:", world)

	// A 12x6 dense matrix in 4x1 blocks, one block per place, and a
	// duplicated operand vector (paper Listing 2's make() factories).
	m, err := rgml.MakeDistBlockMatrix(rt, rgml.DenseBlocks, 12, 6, 4, 1, 4, 1, world)
	if err != nil {
		log.Fatal(err)
	}
	if err := m.InitDense(func(i, j int) float64 { return float64(i + j) }); err != nil {
		log.Fatal(err)
	}
	x, err := rgml.MakeDupVector(rt, 6, world)
	if err != nil {
		log.Fatal(err)
	}
	if err := x.Init(func(i int) float64 { return 1 }); err != nil {
		log.Fatal(err)
	}
	y, err := rgml.MakeDistVector(rt, 12, world)
	if err != nil {
		log.Fatal(err)
	}

	// y = M·x, computed across all places.
	if err := m.MultVec(x, y); err != nil {
		log.Fatal(err)
	}
	before, err := y.ToVector()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("M·1 before failure:", before)

	// Snapshot the matrix: each place saves its blocks locally plus a
	// backup at the next place (double in-memory storage, section IV-B).
	snap, err := m.MakeSnapshot()
	if err != nil {
		log.Fatal(err)
	}
	defer snap.Destroy()

	// Fail-stop place 2. Its matrix block is gone.
	victim := rt.Place(2)
	if err := rt.Kill(victim); err != nil {
		log.Fatal(err)
	}
	fmt.Println("killed:", victim)

	// Shrink every object onto the survivors and restore the matrix from
	// the snapshot (the dead place's block comes from its backup copy).
	survivors := rt.World()
	fmt.Println("survivors:", survivors)
	if err := m.Remake(survivors, true); err != nil {
		log.Fatal(err)
	}
	if err := m.RestoreSnapshot(snap); err != nil {
		log.Fatal(err)
	}
	if err := x.Remake(survivors); err != nil {
		log.Fatal(err)
	}
	if err := x.Init(func(i int) float64 { return 1 }); err != nil {
		log.Fatal(err)
	}
	if err := y.Remake(survivors); err != nil {
		log.Fatal(err)
	}

	// The computation carries on, producing the same answer.
	if err := m.MultVec(x, y); err != nil {
		log.Fatal(err)
	}
	after, err := y.ToVector()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("M·1 after restore:", after)
	if !after.EqualApprox(before, 0) {
		log.Fatal("restore did not reproduce the result")
	}
	fmt.Println("identical results — data survived the failure")
}

// PageRank under failure: the paper's flagship example (Listings 1-5).
// The resilient executor checkpoints every 10 iterations; a place dies
// mid-run; the run shrinks onto the survivors and finishes with ranks
// identical to a failure-free run.
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"github.com/rgml/rgml"
)

func main() {
	const (
		places = 8
		nodes  = 4000
		iters  = 30
	)
	cfg := rgml.PageRankConfig{
		Nodes: nodes, OutDegree: 8, Iterations: iters, Seed: 2015,
	}

	// Failure-free reference run.
	want := run(cfg, places, 0)

	// Run with a failure injected after iteration 15 (the paper's Fig. 7
	// setup), shrink mode.
	got := run(cfg, places, 15)

	// Shrinking changes the segmentation of the uᵀP reduction, so the
	// recovered run can differ from the failure-free run in the last ulp;
	// anything beyond that would indicate lost or corrupted state.
	if !got.EqualApprox(want, 1e-12) {
		log.Fatalf("recovered ranks diverge from the failure-free run")
	}
	fmt.Println("failure run reproduced the failure-free ranks (to fp rounding)")

	// Show the top-5 ranked nodes.
	idx := make([]int, len(got))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return got[idx[a]] > got[idx[b]] })
	fmt.Println("top ranked nodes:")
	for _, i := range idx[:5] {
		fmt.Printf("  node %4d: %.6f\n", i, got[i])
	}
}

// run executes PageRank on its own runtime, optionally killing a place
// after iteration killIter, and returns the final ranks.
func run(cfg rgml.PageRankConfig, places, killIter int) rgml.Vector {
	// One registry observes the runtime and the executor; after a failure
	// run it holds the whole story: kills, restore attempts, snapshot
	// replica traffic.
	reg := rgml.NewMetricsRegistry()
	rt, err := rgml.NewRuntimeWith(
		rgml.WithPlaces(places),
		rgml.WithResilient(true),
		rgml.WithRuntimeObs(reg),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Shutdown()
	killed := false
	exec, err := rgml.NewExecutorWith(rt,
		rgml.WithCheckpointInterval(10),
		rgml.WithRestoreMode(rgml.Shrink),
		rgml.WithExecutorObs(reg),
		rgml.WithAfterStep(func(iter int64) {
			if killIter > 0 && !killed && iter == int64(killIter) {
				killed = true
				victim := rt.Place(places / 2)
				fmt.Printf("iteration %d: killing %v\n", iter, victim)
				if err := rt.Kill(victim); err != nil {
					log.Fatal(err)
				}
			}
		}),
	)
	if err != nil {
		log.Fatal(err)
	}
	app, err := rgml.NewPageRank(rt, cfg, exec.ActiveGroup())
	if err != nil {
		log.Fatal(err)
	}
	if err := exec.Run(app); err != nil {
		log.Fatal(err)
	}
	if killIter > 0 {
		m := exec.Metrics()
		fmt.Printf("recovered: %d restore(s) in %d attempt(s), %d iterations replayed, finished on %v\n",
			m.Restores, m.RestoreAttempts, m.ReplayedSteps, exec.ActiveGroup())
		// The trace ring records the recovery timeline event by event.
		fmt.Println("recovery trace:")
		for _, ev := range reg.TraceEvents() {
			fmt.Printf("  %8v %s (%d, %d)\n", ev.At.Round(time.Microsecond), ev.Name, ev.A, ev.B)
		}
	}
	ranks, err := app.Ranks()
	if err != nil {
		log.Fatal(err)
	}
	return ranks
}

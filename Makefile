# Development gates. `make ci` is the full pre-merge pipeline; the
# individual targets exist so the expensive steps can be run alone.

GO ?= go

.PHONY: ci vet build test race race-recovery race-chaos race-delta race-finish race-store race-transport race-dataplane race-compress chaos-smoke tcp-smoke workers-seq fuzz bench bench-checkpoint bench-kernels bench-delta bench-finish bench-store bench-compress

ci: vet build race race-recovery race-chaos race-delta race-finish race-store race-transport race-dataplane race-compress chaos-smoke tcp-smoke workers-seq bench-checkpoint bench-kernels bench-delta bench-finish bench-store bench-compress

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Extra -race iterations over the recovery-critical packages: the
# executor's multi-failure paths, the application store's checkpoint
# window, and the runtime's ledger/instrumentation are where the
# interleavings live.
race-recovery:
	$(GO) test -race -count=2 ./internal/core/ ./internal/apgas/ ./internal/snapshot/

# The chaos campaign tests again under -race: the burst kills and the
# commit/restore-window kills drive the recovery machinery from injection
# points that run concurrently with the ledger and the replica writes.
race-chaos:
	$(GO) test -race -count=2 -run 'TestChaos' ./internal/bench/
	$(GO) test -race -count=2 ./internal/chaos/

# Extra -race iterations over the delta-checkpointing paths: entry
# carry-forward shares buffers across snapshots, and partial restore
# validates survivor state concurrently with the loads — both are new
# interleavings on top of the recovery machinery.
race-delta:
	$(GO) test -race -count=2 -run 'Delta|Partial|ReadOnly|Retain' ./internal/snapshot/ ./internal/core/ ./internal/dist/ ./internal/bench/

# Extra -race iterations over the sharded resilient-finish paths: the
# per-place shard goroutines, the local fast-path counters, the batched
# fork delivery, and place death broadcast across shards all interleave
# with overlapping finishes — plus the central-vs-sharded fingerprint
# invariance check under the same seeds.
race-finish:
	$(GO) test -race -count=2 -run 'FinishMode|Sharded|LedgerQueue|Refused' ./internal/apgas/
	$(GO) test -race -count=2 -run 'TestKillFingerprintFinishModeInvariance' ./internal/chaos/
	$(GO) test -race -count=2 -run 'TestFinishBenchSmoke' ./internal/bench/

# Extra -race iterations over the redundancy-policy store paths: the
# Reed-Solomon codec's parallel shard reconstruction, replicated and
# erasure-coded puts racing the repair pass, degraded-entry tracking
# under injected replica drops, and the executor-level double-kill
# sweep that pins the loud-loss/recovery contract per policy.
race-store:
	$(GO) test -race -count=2 -run 'TestGF|TestRS' ./internal/codec/
	$(GO) test -race -count=2 -run 'Replicate|Erasure|Repair|Degraded|PolicyClamp|SinglePlace' ./internal/snapshot/
	$(GO) test -race -count=2 -run 'TestExecutor(Repair|Delta|DoubleKill|NoBackup|PartialRestore|SinglePlace)' ./internal/core/
	$(GO) test -race -count=2 -run 'Span' ./internal/chaos/

# Extra -race iterations over the transport seam: the tcp backend's
# frame reader/heartbeat/detector goroutines racing administrative
# kills, the runtime's transport-death broadcast racing Kill, and the
# cross-backend invariance oracle (same chaos schedule on local and tcp
# must give identical kill fingerprints and bitwise-equal iterates).
# The synctest leg pins the failure detector's latency bound,
# no-false-positive and flapping-suppression properties under virtual
# time (asynctimerchan=0 is required by synctest until the go directive
# passes 1.23).
race-transport:
	$(GO) test -race -count=2 ./internal/apgas/transport/... ./internal/cliflags/
	$(GO) test -race -count=2 -run 'Transport' ./internal/apgas/
	$(GO) test -race -count=2 -run 'CrossBackend|RealProcessKill' ./internal/bench/
	GOEXPERIMENT=synctest GODEBUG=asynctimerchan=0 $(GO) test -race -run 'Synctest' ./internal/apgas/transport/

# Extra -race iterations over the registered-kernel data plane: the
# kernel registry/store, coordinator-side dispatch (mirror, fallback,
# forced puts) racing kills, the tcp executor loop with a real worker
# SIGKILLed mid-dispatch, and the dist kernels' ship-once and
# bitwise-equality contracts.
race-dataplane:
	$(GO) test -race -count=2 ./internal/apgas/kernel/
	$(GO) test -race -count=2 -run 'KernelDispatch' ./internal/apgas/
	$(GO) test -race -count=2 -run 'Exec|Wire|PersistentCodec|Hello|RaceGrow' ./internal/apgas/transport/tcp/
	$(GO) test -race -count=2 -run 'MultVecKernel|RestoreBumps' ./internal/dist/

# Extra -race iterations over the compression seam: the chunked float
# codec compresses and inflates through the shared worker pool and the
# flate/buffer pools, the lossy compressor's max-error tracking is a
# CAS loop hit from every place, and the compressed chaos/delta/partial
# paths exercise the per-snapshot compressor from concurrent places.
race-compress:
	$(GO) test -race -count=2 -run 'Compress|Lossy|Lossless' ./internal/codec/ ./internal/dist/ ./internal/bench/

# A short fixed-seed chaos campaign over every benchmark application:
# one kill inside a checkpoint commit plus one during the restore that
# follows. -chaos-strict fails the target if any run does not recover
# and reproduce the failure-free iterate.
chaos-smoke:
	$(GO) run ./cmd/rgmlbench -q -iters 6 -ckpt 2 -scale 0.05 -seeds 7 -chaos-strict \
		-chaos "kill(point=commit,iter=2,place=1);kill(point=restore,place=3)" chaos > /dev/null
	@echo "chaos-smoke: all campaigns survived and verified"

# Multi-process smoke: PageRank over the tcp transport (3 worker
# processes) with one worker SIGKILLed mid-run. The run must detect the
# death by heartbeat (no administrative mark), restore from the last
# checkpoint, and finish; rgmlrun exits non-zero if no restore happened
# or if no registered kernel executed inside a worker process
# (-min-worker-tasks: the distributed data plane must actually engage,
# not silently fall back to coordinator-resident execution).
tcp-smoke:
	$(GO) run ./cmd/rgmlrun -transport tcp -app pagerank -places 4 \
		-size 200 -iters 8 -ckpt 2 -kill-proc-iter 4 -min-worker-tasks 1 > /dev/null
	@echo "tcp-smoke: recovered from a real worker-process kill with worker-side compute"

# The whole suite again with the kernel worker pool pinned to one worker:
# every parallel kernel and tree collective degenerates to its serial
# schedule, so any result drift or pool-only bug shows up as a diff
# against the default-worker run above.
workers-seq:
	RGML_WORKERS=1 $(GO) test -count=1 ./...

# Short fuzz pass over the snapshot wire-format decoders (the committed
# f.Add seeds always run as part of `make test`; this explores further).
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzFloat64s -fuzztime=30s ./internal/codec/
	$(GO) test -run=NONE -fuzz=FuzzInts -fuzztime=30s ./internal/codec/
	$(GO) test -run=NONE -fuzz=FuzzCompressFloat64s -fuzztime=30s ./internal/codec/
	$(GO) test -run=NONE -fuzz=FuzzCompressInts -fuzztime=30s ./internal/codec/
	$(GO) test -run=NONE -fuzz=FuzzDecode -fuzztime=30s ./internal/block/

# Full benchmark sweep (paper figures/tables + ablations).
bench:
	$(GO) test -bench=. -benchmem ./...

# The checkpoint fast-path benchmarks backing BENCH_checkpoint.json.
bench-checkpoint:
	$(GO) test -run=NONE -bench='BenchmarkCodec(Encode|Decode)' -benchmem ./internal/codec/
	$(GO) test -run=NONE -bench='BenchmarkSnapshotSave' -benchmem ./internal/dist/

# The parallel kernel-engine benchmarks backing BENCH_kernels.json.
bench-kernels:
	$(GO) test -run=NONE -bench='BenchmarkKernel' -benchmem ./internal/la/ ./internal/dist/

# The delta-checkpointing comparison backing BENCH_delta.json: full vs
# delta checkpoint traffic and partial-restore traffic for LinReg with
# inputs checkpointed every interval, one failure repaired by a spare.
bench-delta:
	$(GO) run ./cmd/rgmlbench -q -places 2,4,8 delta > BENCH_delta.json
	@echo "bench-delta: wrote BENCH_delta.json"

# The resilient-finish architecture comparison backing BENCH_finish.json:
# central place-zero ledger vs sharded home-based bookkeeping — fork/join
# throughput, finish-barrier latency, resilient overhead vs place count,
# and the cross-mode chaos fingerprint/weights invariance oracle.
bench-finish:
	$(GO) run ./cmd/rgmlbench -q finish > BENCH_finish.json
	@echo "bench-finish: wrote BENCH_finish.json"

# The redundancy-policy comparison backing BENCH_store.json: storage
# overhead and reconstruction throughput for replication factors vs
# Reed-Solomon erasure geometries, plus the correlated double-kill
# survival matrix (k=2 loses loudly; k=3 and erasure recover and verify).
bench-store:
	$(GO) run ./cmd/rgmlbench -q store > BENCH_store.json
	@echo "bench-store: wrote BENCH_store.json"

# The checkpoint-compression sweep backing BENCH_compress.json: shipped
# checkpoint bytes and iterations-to-converge for none vs lossless vs
# error-bounded lossy at several bounds, for a dense (LinReg) and a
# sparse (PageRank) application, each run through a mid-computation kill
# and restore. The sweep hard-fails if lossless is not bitwise-equal to
# the uncompressed baseline or a lossy error exceeds its bound.
bench-compress:
	$(GO) run ./cmd/rgmlbench -q compress > BENCH_compress.json
	@echo "bench-compress: wrote BENCH_compress.json"

# Development gates. `make ci` is the full pre-merge pipeline; the
# individual targets exist so the expensive steps can be run alone.

GO ?= go

.PHONY: ci vet build test race race-recovery fuzz bench bench-checkpoint

ci: vet build race race-recovery bench-checkpoint

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Extra -race iterations over the recovery-critical packages: the
# executor's multi-failure paths, the application store's checkpoint
# window, and the runtime's ledger/instrumentation are where the
# interleavings live.
race-recovery:
	$(GO) test -race -count=2 ./internal/core/ ./internal/apgas/ ./internal/snapshot/

# Short fuzz pass over the snapshot wire-format decoders (the committed
# f.Add seeds always run as part of `make test`; this explores further).
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzFloat64s -fuzztime=30s ./internal/codec/
	$(GO) test -run=NONE -fuzz=FuzzInts -fuzztime=30s ./internal/codec/
	$(GO) test -run=NONE -fuzz=FuzzDecode -fuzztime=30s ./internal/block/

# Full benchmark sweep (paper figures/tables + ablations).
bench:
	$(GO) test -bench=. -benchmem ./...

# The checkpoint fast-path benchmarks backing BENCH_checkpoint.json.
bench-checkpoint:
	$(GO) test -run=NONE -bench='BenchmarkCodec(Encode|Decode)' -benchmem ./internal/codec/
	$(GO) test -run=NONE -bench='BenchmarkSnapshotSave' -benchmem ./internal/dist/
